package core

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/tertiary"
)

// chaosSeed drives both the workload mix and the fault plan. The run is
// fully deterministic, so the assertions below (transient faults occurred
// and were all recovered; permanent write faults occurred and every one
// ended in a retired segment plus a successful restage) hold on every
// execution, not just probabilistically.
const chaosSeed = 20260804

// runChaosSoak executes the full FS workload under a seeded fault plan
// and returns a digest of everything observable: surviving file contents,
// lost files, recovery counters, injected-fault counters, and the final
// virtual clock. Two runs must produce identical digests.
func runChaosSoak(t *testing.T) string {
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(160*segBlocks), bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 6, 24, segBlocks*lfs.BlockSize, bus)
	cfg := Config{
		SegBlocks:   segBlocks,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{juke},
		CacheSegs:   20,
		MaxInodes:   512,
		BufferBytes: 1 << 20,
	}

	// Well above the acceptance floor (1% transient, 0.1% permanent).
	// MaxBurst stays below the default retry budget so every transient
	// fault is recoverable.
	plan := fault.NewPlan(fault.Config{
		Seed:               chaosSeed,
		TransientReadRate:  0.05,
		TransientWriteRate: 0.05,
		PermanentReadRate:  0.002,
		PermanentWriteRate: 0.06,
		LoadFailRate:       0.01,
		MaxBurst:           3,
	})
	plan.InstallJukebox("mo", juke)
	// Two outage windows on drive 1; drive 0 stays healthy throughout, so
	// requests during an outage fail over instead of failing.
	plan.AddOutage(juke, fault.Outage{Drive: 1, Start: 30 * sim.Time(time.Second), End: 90 * sim.Time(time.Second)})
	plan.AddOutage(juke, fault.Outage{Drive: 1, Start: 200 * sim.Time(time.Second), End: 260 * sim.Time(time.Second)})
	plan.Start(k)

	model := map[string][]byte{}
	var names, lost []string
	rng := sim.NewRNG(chaosSeed)
	var digest string

	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		hl.FS.AttachCleaner(6, 10)

		// markLost records graceful degradation: a file whose bytes sat on
		// media that went permanently bad. It leaves the namespace alone —
		// only the model stops expecting the data back.
		markLost := func(name string) {
			delete(model, name)
			for i, n := range names {
				if n == name {
					names = append(names[:i], names[i+1:]...)
					break
				}
			}
			lost = append(lost, name)
		}
		verify := func(name string) {
			f, err := hl.FS.Open(p, name)
			if err != nil {
				if errors.Is(err, tertiary.ErrSegmentUnavailable) {
					markLost(name)
					return
				}
				t.Fatalf("open %s: %v", name, err)
			}
			want := model[name]
			got := make([]byte, len(want))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				if errors.Is(err, tertiary.ErrSegmentUnavailable) {
					markLost(name)
					return
				}
				t.Fatalf("read %s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s corrupted: surviving data diverged from model", name)
			}
		}

		for op := 0; op < 300; op++ {
			p.Sleep(time.Duration(rng.Intn(1000)) * time.Millisecond)
			switch r := rng.Intn(100); {
			case r < 30 || len(names) == 0: // create
				if len(names) >= 25 {
					continue
				}
				name := "/c" + itoa(op)
				data := make([]byte, rng.Intn(10*lfs.BlockSize)+1)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				f, err := hl.FS.Create(p, name)
				if err != nil {
					t.Fatalf("op %d create: %v", op, err)
				}
				if _, err := f.WriteAt(p, data, 0); err != nil {
					t.Fatalf("op %d write: %v", op, err)
				}
				model[name] = data
				names = append(names, name)
			case r < 45: // overwrite a slice
				name := names[rng.Intn(len(names))]
				cur := model[name]
				off := rng.Intn(len(cur))
				patch := make([]byte, rng.Intn(2*lfs.BlockSize)+1)
				for i := range patch {
					patch[i] = byte(rng.Intn(256))
				}
				f, err := hl.FS.Open(p, name)
				if err == nil {
					_, err = f.WriteAt(p, patch, int64(off))
				}
				if err != nil {
					if errors.Is(err, tertiary.ErrSegmentUnavailable) {
						markLost(name)
						continue
					}
					t.Fatalf("op %d overwrite: %v", op, err)
				}
				if off+len(patch) > len(cur) {
					grown := make([]byte, off+len(patch))
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], patch)
				model[name] = cur
			case r < 52: // delete
				i := rng.Intn(len(names))
				name := names[i]
				if err := hl.FS.Remove(p, name); err != nil {
					if errors.Is(err, tertiary.ErrSegmentUnavailable) {
						markLost(name)
						continue
					}
					t.Fatalf("op %d remove: %v", op, err)
				}
				delete(model, name)
				names = append(names[:i], names[i+1:]...)
			case r < 72: // migrate a random file (whole or partial)
				name := names[rng.Intn(len(names))]
				f, err := hl.FS.Open(p, name)
				if err == nil {
					if rng.Intn(2) == 0 {
						_, err = hl.MigrateFiles(p, []uint32{f.Inum()}, rng.Intn(2) == 0)
					} else if err = hl.FS.Sync(p); err == nil {
						var refs []lfs.BlockRef
						refs, err = hl.FS.FileBlockRefs(p, f.Inum())
						if err == nil {
							if len(refs) > 1 {
								refs = refs[:1+rng.Intn(len(refs)-1)]
							}
							_, err = hl.MigrateRefs(p, refs)
						}
					}
				}
				if err != nil && !errors.Is(err, ErrNoTertiarySpace) {
					if errors.Is(err, tertiary.ErrSegmentUnavailable) {
						markLost(name)
					} else {
						t.Fatalf("op %d migrate: %v", op, err)
					}
				}
				if err := hl.CompleteMigration(p); err != nil && !errors.Is(err, ErrNoTertiarySpace) {
					t.Fatalf("op %d complete: %v", op, err)
				}
			case r < 80: // eject cache lines (Lines() is tag-ordered)
				for _, l := range hl.Cache.Lines() {
					if l.Staging || l.Pins > 0 {
						continue
					}
					if rng.Intn(2) == 0 {
						if err := hl.Svc.Eject(l.Tag); err != nil {
							t.Fatal(err)
						}
					}
				}
			case r < 88: // verify a random file
				verify(names[rng.Intn(len(names))])
			case r < 94: // disk cleaning
				segs := hl.FS.SelectCleanable(2)
				if len(segs) > 0 {
					if _, err := hl.FS.CleanSegments(p, segs); err != nil {
						t.Fatalf("op %d clean: %v", op, err)
					}
				}
			default: // tertiary volume cleaning
				if u, ok := hl.SelectCleanableVolume(); ok {
					_, err := hl.CleanVolume(p, u.Device, u.Volume)
					if err != nil && !errors.Is(err, ErrNoTertiarySpace) &&
						!errors.Is(err, tertiary.ErrSegmentUnavailable) {
						t.Fatalf("op %d cleanvolume: %v", op, err)
					}
				}
			}
		}

		// Settle every in-flight write, then verify all survivors: zero
		// corrupted reads, no staged block lost.
		if err := hl.CompleteMigration(p); err != nil && !errors.Is(err, ErrNoTertiarySpace) {
			t.Fatalf("final complete: %v", err)
		}
		for _, name := range append([]string(nil), names...) {
			verify(name)
		}
		if err := hl.FS.Checkpoint(p); err != nil {
			t.Fatal(err)
		}

		ss := hl.Svc.Stats()
		pc := plan.DeviceCounts("mo")
		js := juke.Stats()
		if pc.Transient == 0 {
			t.Fatal("fault plan injected no transient errors")
		}
		if ss.TransientRetries == 0 {
			t.Fatal("no transient error was retried")
		}
		if ss.RetriesExhausted != 0 {
			t.Fatalf("%d operations exhausted the retry budget (transient faults must all recover)", ss.RetriesExhausted)
		}
		if ss.CopyoutFaults == 0 {
			t.Fatal("fault plan produced no permanent write errors; raise rates or change the seed")
		}
		if hl.RetiredSegments() == 0 {
			t.Fatal("permanent write errors occurred but no segment was retired")
		}
		if got := hl.Svc.FailedWrites(); len(got) != 0 {
			t.Fatalf("unresolved failed writes at shutdown: %v", got)
		}
		if js.Failovers == 0 {
			t.Fatal("drive outage windows produced no failovers")
		}
		if len(lost) > 0 && pc.BadSegs == 0 {
			t.Fatalf("files lost (%v) without any permanent media fault", lost)
		}

		// Digest: everything a divergent run could differ in.
		h := sha256.New()
		for _, name := range names {
			fmt.Fprintf(h, "%s:%x\n", name, sha256.Sum256(model[name]))
		}
		fmt.Fprintf(h, "lost:%v\n", lost)
		fmt.Fprintf(h, "svc:%+v\n", ss)
		fmt.Fprintf(h, "faults:%+v juke:%+v retired:%d\n", pc, js, hl.RetiredSegments())
		fmt.Fprintf(h, "now:%d\n", int64(p.Now()))
		digest = fmt.Sprintf("%x files=%d lost=%d retired=%d retries=%d", h.Sum(nil), len(names), len(lost), hl.RetiredSegments(), ss.TransientRetries)
	})
	k.Stop()
	return digest
}

// TestChaosSoakUnderFaultPlan is the tentpole robustness check: a full
// randomized workload under injected media errors, drive outages, and
// load failures must end with zero corruption on surviving segments,
// every transient fault recovered, every permanent write fault retired
// and restaged, a clean shutdown — and the whole run bit-identical when
// repeated with the same seed.
func TestChaosSoakUnderFaultPlan(t *testing.T) {
	d1 := runChaosSoak(t)
	d2 := runChaosSoak(t)
	if d1 != d2 {
		t.Fatalf("chaos run is not deterministic:\n  run 1: %s\n  run 2: %s", d1, d2)
	}
}
