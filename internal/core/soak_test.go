package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// TestFullHierarchySoak drives the entire system with randomized
// operations — creates, overwrites, deletes, whole-file and partial
// migration, cache ejection, disk cleaning, tertiary volume cleaning —
// against an in-memory model, then remounts from the media and verifies
// every byte. This is the broadest invariant check in the repository:
// no sequence of mechanisms may ever lose or corrupt a committed byte.
func TestFullHierarchySoak(t *testing.T) {
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(160*segBlocks), bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 6, 24, segBlocks*lfs.BlockSize, bus)
	cfg := Config{
		SegBlocks:   segBlocks,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{juke},
		CacheSegs:   20,
		MaxInodes:   512,
		BufferBytes: 1 << 20,
	}
	model := map[string][]byte{}
	var names []string
	rng := sim.NewRNG(777)

	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		hl.FS.AttachCleaner(6, 10)
		verify := func(name string) {
			f, err := hl.FS.Open(p, name)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			want := model[name]
			got := make([]byte, len(want))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatalf("read %s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s diverged from model", name)
			}
		}
		for op := 0; op < 250; op++ {
			p.Sleep(time.Duration(rng.Intn(1000)) * time.Millisecond)
			switch r := rng.Intn(100); {
			case r < 30 || len(names) == 0: // create
				if len(names) >= 25 {
					continue
				}
				name := "/s" + itoa(op)
				sz := rng.Intn(10*lfs.BlockSize) + 1
				data := make([]byte, sz)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				f, err := hl.FS.Create(p, name)
				if err != nil {
					t.Fatalf("op %d create: %v", op, err)
				}
				if _, err := f.WriteAt(p, data, 0); err != nil {
					t.Fatalf("op %d write: %v", op, err)
				}
				model[name] = data
				names = append(names, name)
			case r < 45: // overwrite a slice
				name := names[rng.Intn(len(names))]
				cur := model[name]
				off := rng.Intn(len(cur))
				n := rng.Intn(2*lfs.BlockSize) + 1
				patch := make([]byte, n)
				for i := range patch {
					patch[i] = byte(rng.Intn(256))
				}
				f, err := hl.FS.Open(p, name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt(p, patch, int64(off)); err != nil {
					t.Fatal(err)
				}
				if off+n > len(cur) {
					grown := make([]byte, off+n)
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], patch)
				model[name] = cur
			case r < 55: // delete
				i := rng.Intn(len(names))
				name := names[i]
				if err := hl.FS.Remove(p, name); err != nil {
					t.Fatalf("op %d remove: %v", op, err)
				}
				delete(model, name)
				names = append(names[:i], names[i+1:]...)
			case r < 70: // migrate a random file (whole or partial)
				name := names[rng.Intn(len(names))]
				f, err := hl.FS.Open(p, name)
				if err != nil {
					t.Fatal(err)
				}
				if rng.Intn(2) == 0 {
					_, err = hl.MigrateFiles(p, []uint32{f.Inum()}, rng.Intn(2) == 0)
				} else {
					if err := hl.FS.Sync(p); err != nil {
						t.Fatal(err)
					}
					refs, e := hl.FS.FileBlockRefs(p, f.Inum())
					if e != nil {
						t.Fatal(e)
					}
					if len(refs) > 1 {
						refs = refs[:1+rng.Intn(len(refs)-1)]
					}
					_, err = hl.MigrateRefs(p, refs)
				}
				if err != nil && !errors.Is(err, ErrNoTertiarySpace) {
					t.Fatalf("op %d migrate: %v", op, err)
				}
				if err := hl.CompleteMigration(p); err != nil {
					t.Fatalf("op %d complete: %v", op, err)
				}
			case r < 80: // eject cache lines
				for _, l := range hl.Cache.Lines() {
					if l.Staging || l.Pins > 0 {
						continue
					}
					if rng.Intn(2) == 0 {
						if err := hl.Svc.Eject(l.Tag); err != nil {
							t.Fatal(err)
						}
					}
				}
			case r < 88: // verify a random file
				verify(names[rng.Intn(len(names))])
			case r < 94: // disk cleaning
				segs := hl.FS.SelectCleanable(2)
				if len(segs) > 0 {
					if _, err := hl.FS.CleanSegments(p, segs); err != nil {
						t.Fatalf("op %d clean: %v", op, err)
					}
				}
			default: // tertiary volume cleaning
				if u, ok := hl.SelectCleanableVolume(); ok {
					if _, err := hl.CleanVolume(p, u.Device, u.Volume); err != nil {
						t.Fatalf("op %d cleanvolume: %v", op, err)
					}
				}
			}
		}
		// Verify everything, then checkpoint for the remount phase.
		for _, name := range names {
			verify(name)
		}
		if err := hl.FS.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
	k.Stop()

	// Remount from the same media with a fresh kernel-equivalent state and
	// verify every file once more (including demand fetches for migrated
	// content).
	k2 := sim.NewKernel()
	bus2 := dev.NewBus(k2, "scsi", dev.SCSIBusRate)
	_ = bus2
	k2.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, false)
		if err != nil {
			t.Fatalf("remount: %v", err)
		}
		for _, name := range names {
			f, err := hl.FS.Open(p, name)
			if err != nil {
				t.Fatalf("open %s after remount: %v", name, err)
			}
			want := model[name]
			got := make([]byte, len(want))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatalf("read %s after remount: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s diverged after remount", name)
			}
		}
	})
	k2.Stop()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
