package core

import (
	"bytes"
	"testing"

	"repro/internal/addr"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func TestAddDiskGrowsCapacityOnline(t *testing.T) {
	e := newHL(t, 24, 4, 4, 16) // small farm: 24 segments
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		// Fill until the original disk cannot take another file.
		var err error
		var i int
		for i = 0; i < 64; i++ {
			f, e2 := hl.FS.Create(p, "/fill"+string(rune('a'+i%26))+string(rune('0'+i/26)))
			if e2 != nil {
				err = e2
				break
			}
			if _, e2 := f.WriteAt(p, pat(byte(i), 16*lfs.BlockSize), 0); e2 != nil {
				err = e2
				break
			}
			if e2 := hl.FS.Sync(p); e2 != nil {
				err = e2
				break
			}
		}
		if err == nil {
			t.Fatal("small disk never filled")
		}
		before := hl.FS.CleanSegs()
		// Plug in a second disk.
		d2 := dev.NewDisk(e.k, dev.RZ58, int64(24*16), e.bus)
		segs, err := hl.AddDisk(p, d2)
		if err != nil {
			t.Fatalf("AddDisk: %v", err)
		}
		if segs != 24 {
			t.Fatalf("added %d segments, want 24", segs)
		}
		// GrowDisk's checkpoint flushes the write that failed above, so a
		// segment or two of the new space is consumed immediately.
		if hl.FS.CleanSegs() < before+20 {
			t.Fatalf("clean segments %d -> %d, want ~+24", before, hl.FS.CleanSegs())
		}
		// Writes succeed again and survive verification.
		data := pat(99, 48*lfs.BlockSize)
		f := put(t, p, hl, "/after-growth", data)
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("data on grown farm corrupted")
		}
	})
	e.k.Stop()
}

func TestAddDiskPersistsAcrossRemount(t *testing.T) {
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	d1 := dev.NewDisk(k, dev.RZ57, int64(32*segBlocks), bus)
	d2 := dev.NewDisk(k, dev.RZ58, int64(16*segBlocks), bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 2, 16, segBlocks*lfs.BlockSize, bus)
	data := pat(7, 30*lfs.BlockSize)
	cfg := Config{
		SegBlocks:   segBlocks,
		Disks:       []dev.BlockDev{d1},
		Jukeboxes:   []jukebox.Footprint{juke},
		CacheSegs:   6,
		MaxInodes:   128,
		BufferBytes: 1 << 20,
	}
	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hl.AddDisk(p, d2); err != nil {
			t.Fatal(err)
		}
		f := put(t, p, hl, "/grown", data)
		_ = f
		if err := hl.FS.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
	// Remount with both disks present.
	cfg.Disks = []dev.BlockDev{d1, d2}
	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, false)
		if err != nil {
			t.Fatalf("remount with grown farm: %v", err)
		}
		f, err := hl.FS.Open(p, "/grown")
		if err != nil {
			t.Fatal(err)
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("grown-farm data lost across remount")
		}
	})
	k.Stop()
}

func TestRetireDiskRangeEvacuatesData(t *testing.T) {
	e := newHL(t, 64, 6, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(3, 60*lfs.BlockSize)
		f := put(t, p, hl, "/keep", data)
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Retire the middle third of the disk.
		lo, hi := addr.SegNo(20), addr.SegNo(40)
		if err := hl.RetireDiskRange(p, lo, hi); err != nil {
			t.Fatalf("retire: %v", err)
		}
		// No live block may remain in the retired range.
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		for _, r := range refs {
			s := hl.Amap.SegOf(r.Addr)
			if s >= lo && s < hi {
				t.Fatalf("block %d still lives in retired segment %d", r.Lbn, s)
			}
		}
		if err := hl.FS.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("data corrupted by disk retirement")
		}
		// Retired segments never get reused.
		g := put(t, p, hl, "/new", pat(4, 40*lfs.BlockSize))
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		refs2, _ := hl.FS.FileBlockRefs(p, g.Inum())
		for _, r := range refs2 {
			s := hl.Amap.SegOf(r.Addr)
			if s >= lo && s < hi {
				t.Fatalf("new data allocated in retired segment %d", s)
			}
		}
	})
	e.k.Stop()
}
