package core

import "sort"

// HSM pin enforcement. Pins arrive from the internal/hsm service surface at
// two granularities:
//
//   - Segment pins keep a tertiary segment's cached copy resident: the cache
//     evictor skips it (cache.Cache.Locked), Eject refuses it, and the
//     tertiary cleaner will not select its volume. The in-memory state is a
//     refcount (several pinned files may share a segment); the 0↔1 edges are
//     mirrored into the checkpointed tsegfile as lfs.SegPinned, so pins ride
//     the same durability path as every other segment state and survive a
//     crash. Between a post-crash mount and the HSM layer re-deriving its
//     refcounts, the persisted flag alone keeps the guards active.
//
//   - Inode pins keep a file's disk-resident blocks on disk: migration
//     policies and MigrateFiles skip pinned inodes, so a pinned file is
//     never staged out to tertiary storage.
//
// The registries live on HighLight rather than in internal/hsm so the
// enforcement points (cache, cleaner, migrator) need no upward dependency.

// PinSegment takes one pin reference on tertiary segment tag. The first
// reference marks the segment pinned in the checkpointed tertiary usage
// table (durable after the next checkpoint).
func (hl *HighLight) PinSegment(tag int) {
	if hl.pinnedSegs == nil {
		hl.pinnedSegs = make(map[int]int)
	}
	hl.pinnedSegs[tag]++
	if hl.pinnedSegs[tag] == 1 {
		hl.FS.MarkTsegPinned(tag)
	}
}

// UnpinSegment drops one pin reference from tertiary segment tag. The last
// reference clears the persisted pin flag. Unpinning an unpinned segment is
// a no-op (the HSM layer validates request state before calling down).
func (hl *HighLight) UnpinSegment(tag int) {
	n, ok := hl.pinnedSegs[tag]
	if !ok {
		// No in-memory reference: clear a stale persisted flag (e.g. a
		// crash-recovered pin the HSM layer decided not to re-adopt).
		hl.FS.ClearTsegPinned(tag)
		return
	}
	if n <= 1 {
		delete(hl.pinnedSegs, tag)
		hl.FS.ClearTsegPinned(tag)
		return
	}
	hl.pinnedSegs[tag] = n - 1
}

// SegmentPinned reports whether tertiary segment tag is HSM-pinned, by
// in-memory refcount or by the persisted flag (authoritative between a
// crash-recovery mount and HSM re-attachment).
func (hl *HighLight) SegmentPinned(tag int) bool {
	if hl.pinnedSegs[tag] > 0 {
		return true
	}
	return tag >= 0 && tag < hl.FS.TsegCount() && hl.FS.TsegPinned(tag)
}

// PinnedSegments lists the pinned tertiary segments in ascending order,
// merging in-memory references with persisted flags.
func (hl *HighLight) PinnedSegments() []int {
	seen := make(map[int]bool, len(hl.pinnedSegs))
	for tag := range hl.pinnedSegs {
		seen[tag] = true
	}
	for tag := 0; tag < hl.FS.TsegCount(); tag++ {
		if hl.FS.TsegPinned(tag) {
			seen[tag] = true
		}
	}
	out := make([]int, 0, len(seen))
	for tag := range seen {
		out = append(out, tag)
	}
	sort.Ints(out)
	return out
}

// PinInode takes one pin reference on an inode: migration policies and
// MigrateFiles refuse to stage a pinned file's blocks out to tertiary
// storage.
func (hl *HighLight) PinInode(inum uint32) {
	if hl.pinnedInodes == nil {
		hl.pinnedInodes = make(map[uint32]int)
	}
	hl.pinnedInodes[inum]++
}

// UnpinInode drops one pin reference from an inode.
func (hl *HighLight) UnpinInode(inum uint32) {
	n, ok := hl.pinnedInodes[inum]
	if !ok {
		return
	}
	if n <= 1 {
		delete(hl.pinnedInodes, inum)
		return
	}
	hl.pinnedInodes[inum] = n - 1
}

// InodePinned reports whether the inode carries an HSM pin.
func (hl *HighLight) InodePinned(inum uint32) bool { return hl.pinnedInodes[inum] > 0 }

// PinnedInodes lists the pinned inodes in ascending order.
func (hl *HighLight) PinnedInodes() []uint32 {
	out := make([]uint32, 0, len(hl.pinnedInodes))
	for inum := range hl.pinnedInodes {
		out = append(out, inum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
