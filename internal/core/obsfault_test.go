package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/sim"
)

// obsFaultResult is everything one instrumented fault-plan run exposes:
// the Chrome trace bytes plus the counters the reconciliation compares.
type obsFaultResult struct {
	trace         []byte
	retries       int64 // svc.Stats().TransientRetries
	retryEvents   int64 // obs "io.retry" instants
	exhausted     int64
	fetches       int64 // svc.Stats().Fetches
	fetchCounter  int64 // obs "tertiary.fetches"
	cacheHits     int64
	cacheMisses   int64
	heatHits      int64 // summed over the heat-map snapshot
	heatMisses    int64
	heatFetches   int64
	auditRecorded int64
}

// runObsFaultWorkload runs a scripted migrate → eject → demand-fetch
// workload under a seeded transient-fault plan with full trace
// retention, then collects the trace and every counter family that is
// supposed to agree: the tertiary service's own stats, the obs domain's
// counters and instants, and the heat-attribution table.
func runObsFaultWorkload(t *testing.T) obsFaultResult {
	t.Helper()
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(160*segBlocks), bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 24, segBlocks*lfs.BlockSize, bus)

	o := obs.New(k)
	o.EnableTrace()
	disk.SetObs(o, "")
	juke.SetObs(o, "")

	// Transient-only faults: every injected error must be retried to
	// success, so no counter family can legitimately disagree via lost
	// segments. (Drive outages and failovers are the chaos soak's job.)
	plan := fault.NewPlan(fault.Config{
		Seed:               7,
		TransientReadRate:  0.2,
		TransientWriteRate: 0.2,
		MaxBurst:           2,
	})
	plan.InstallJukebox("mo", juke)
	plan.Start(k)

	var res obsFaultResult
	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, Config{
			SegBlocks:   segBlocks,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   16,
			MaxInodes:   128,
			BufferBytes: 1 << 20,
			Obs:         o,
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		var inums []uint32
		for i := 0; i < 6; i++ {
			f, err := hl.FS.Create(p, fmt.Sprintf("/f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, (8+4*i)*lfs.BlockSize)
			for j := range data {
				data[j] = byte(j * (i + 3))
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			inums = append(inums, f.Inum())
		}
		if _, err := hl.MigrateFiles(p, inums, true); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Demand fetches: drop buffers, eject every clean line, read back.
		for i := 0; i < 6; i++ {
			f, err := hl.FS.Open(p, fmt.Sprintf("/f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			hl.FS.DropFileBuffers(p, f.Inum())
		}
		for _, l := range hl.Cache.Lines() {
			if l.Staging || l.Pins > 0 {
				continue
			}
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6; i++ {
			f, err := hl.FS.Open(p, fmt.Sprintf("/f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 4*lfs.BlockSize)
			if _, err := f.ReadAt(p, buf, 0); err != nil {
				t.Fatal(err)
			}
		}

		ss := hl.Svc.Stats()
		cs := hl.Cache.Stats()
		res.retries = ss.TransientRetries
		res.exhausted = ss.RetriesExhausted
		res.fetches = ss.Fetches
		res.cacheHits = cs.Hits
		res.cacheMisses = cs.Misses
		res.auditRecorded = hl.Audit.Total()
		for _, e := range hl.Heat.Snapshot(p.Now()).Segments {
			res.heatHits += e.Hits
			res.heatMisses += e.Misses
			res.heatFetches += e.Fetches
		}
	})
	k.Stop()

	res.retryEvents = o.CatCount("io.retry")
	res.fetchCounter = o.Counter("tertiary.fetches").Value()

	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	res.trace = buf.Bytes()
	return res
}

// TestObsFaultTraceDeterministic pins the obs × fault interplay: with a
// seeded transient-fault plan injecting errors into the run, the
// retained Chrome trace must still be byte-identical across runs —
// fault injection, retry scheduling, and tracing all live on the same
// virtual clock.
func TestObsFaultTraceDeterministic(t *testing.T) {
	a := runObsFaultWorkload(t)
	b := runObsFaultWorkload(t)
	if !bytes.Equal(a.trace, b.trace) {
		t.Fatal("two identical fault-plan runs produced different traces")
	}
	if !bytes.Contains(a.trace, []byte(`"cat":"io.retry"`)) {
		t.Fatal("trace retained no io.retry instants despite injected transients")
	}
}

// TestObsFaultCountersReconcile cross-checks every counter family that
// records the same underlying events: the tertiary service's stats, the
// obs domain, and the heat-attribution table must agree exactly — under
// fault injection, not just on the happy path.
func TestObsFaultCountersReconcile(t *testing.T) {
	r := runObsFaultWorkload(t)
	if r.retries == 0 {
		t.Fatal("fault plan injected no retried transients; raise rates or change the seed")
	}
	if r.exhausted != 0 {
		t.Fatalf("%d operations exhausted the retry budget (transient-only plan must recover)", r.exhausted)
	}
	if r.retryEvents != r.retries {
		t.Errorf("obs saw %d io.retry instants, service retried %d times", r.retryEvents, r.retries)
	}
	if r.fetches == 0 {
		t.Fatal("workload performed no demand fetches")
	}
	if r.fetchCounter != r.fetches {
		t.Errorf("obs counted %d fetches, service %d", r.fetchCounter, r.fetches)
	}
	if r.heatFetches != r.fetches {
		t.Errorf("heat table attributed %d fetches, service performed %d", r.heatFetches, r.fetches)
	}
	if r.heatHits != r.cacheHits || r.heatMisses != r.cacheMisses {
		t.Errorf("heat table attributed %d hits / %d misses, cache counted %d / %d",
			r.heatHits, r.heatMisses, r.cacheHits, r.cacheMisses)
	}
	if r.auditRecorded == 0 {
		t.Fatal("migration under faults recorded no audit decisions")
	}
}
