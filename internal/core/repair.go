package core

import (
	"fmt"
	"time"

	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Replica repair: the durability counterpart of the migration mechanism.
// Media retirement (a permanent write error burning a replica) and
// whole-library outages drop segments below their replication target;
// the repair pass finds them, re-reads a surviving copy (through the
// regular demand-fetch path, so the library-aware router picks the
// source), and lays down fresh replicas on healthy libraries. The system
// degrades instead of failing: reads keep being served from whatever
// copies survive while repair catches up in virtual time.

// RepairPolicy bounds one repair pass.
type RepairPolicy struct {
	// MaxInFlight caps concurrently outstanding repair copyouts, so a
	// large deficit backlog cannot monopolize the I/O process.
	MaxInFlight int
	// Retries bounds placement retries per deficit when every healthy
	// library is momentarily full or down.
	Retries int
	// Backoff is the virtual-time sleep between placement retries.
	Backoff sim.Time
}

// DefaultRepairPolicy repairs two segments at a time and gives a
// transiently unplaceable deficit a few chances before deferring it to
// the next pass.
var DefaultRepairPolicy = RepairPolicy{
	MaxInFlight: 2,
	Retries:     3,
	Backoff:     250 * sim.Time(time.Millisecond),
}

// Deficit describes one under-replicated tertiary segment.
type Deficit struct {
	Tag     int   // primary tertiary segment index
	Copies  int   // reachable copies right now (primary + live replicas)
	Target  int   // desired copy count (HighLight.Replicas, min 1)
	Sources []int // tags a repair read could be served from
}

// replicaTarget is the copy count every dirty segment should have.
func (hl *HighLight) replicaTarget() int {
	if hl.Replicas > 1 {
		return hl.Replicas
	}
	return 1
}

// ReplicationDeficits scans the tertiary usage table for segments with
// fewer reachable copies than the replication target. A copy is
// reachable when its library is in service; the staging segment (still
// disk-only) and replica tags themselves are skipped.
func (hl *HighLight) ReplicationDeficits() []Deficit {
	target := hl.replicaTarget()
	var out []Deficit
	for tag := 0; tag < hl.FS.TsegCount(); tag++ {
		su := hl.FS.TsegUsage(tag)
		if su.Flags&lfs.SegDirty == 0 || su.LiveBytes == 0 {
			continue
		}
		if _, isReplica := hl.replicaTag[tag]; isReplica {
			continue
		}
		if tag == hl.stageTag {
			continue
		}
		copies := 0
		var sources []int
		if !hl.tagLibDown(tag) {
			copies++
			sources = append(sources, tag)
		}
		for _, r := range hl.replicaOf[tag] {
			if !hl.tagLibDown(r) {
				copies++
				sources = append(sources, r)
			}
		}
		if copies >= target {
			continue
		}
		if _, cached := hl.Cache.Peek(tag); cached && len(sources) == 0 {
			// The disk cache still holds the bytes: not a reachable
			// tertiary copy, but a valid repair source.
			sources = append(sources, tag)
		}
		out = append(out, Deficit{Tag: tag, Copies: copies, Target: target, Sources: sources})
	}
	return out
}

// RepairPass restores replication for every current deficit: fetch a
// surviving copy into the cache, allocate fresh replica segments on
// healthy libraries (with bounded placement retries), and copy the bytes
// out, at most Repair.MaxInFlight copyouts at a time. It returns how
// many replicas were laid down. Deficits that cannot be repaired yet —
// no space, every other library down — are deferred to the next pass;
// segments with no surviving copy at all are recorded as lost.
func (hl *HighLight) RepairPass(p *sim.Proc) (int, error) {
	defs := hl.ReplicationDeficits()
	gauge := hl.Obs.Gauge("repair.under_replicated")
	gauge.Set(int64(len(defs)))
	if len(defs) == 0 {
		return 0, nil
	}
	t0 := p.Now()
	repaired := 0
	for _, d := range defs {
		n, err := hl.repairOne(p, d)
		repaired += n
		if err != nil {
			return repaired, err
		}
	}
	if err := hl.drainCopyoutFailures(p); err != nil {
		return repaired, err
	}
	// The no-store reservations for the new replicas must survive a
	// crash, or the allocator could hand the same segments out again.
	if err := hl.FS.CheckpointTables(p); err != nil {
		return repaired, err
	}
	gauge.Set(int64(len(hl.ReplicationDeficits())))
	hl.Obs.Span("core", "core.repair", "RepairPass", t0,
		obs.Arg{Key: "deficits", Val: int64(len(defs))}, obs.Arg{Key: "repaired", Val: int64(repaired)})
	return repaired, nil
}

// repairOne brings one deficit back to target, scheduling one copyout
// per missing replica.
func (hl *HighLight) repairOne(p *sim.Proc, d Deficit) (int, error) {
	if len(d.Sources) == 0 {
		hl.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "repair", Subject: fmt.Sprintf("seg:%d", d.Tag),
			Seg: d.Tag, Verdict: attr.VerdictLost, Reason: "no surviving copy",
			Inputs: []attr.Input{attr.In("copies", 0), attr.In("target", float64(d.Target))},
		})
		hl.Obs.Counter("repair.segments_lost").Add(1)
		return 0, nil
	}
	// Materialize the bytes on disk. DemandFetch routes through the
	// library-aware read order, so a down primary is served from a
	// surviving replica transparently.
	line, ok := hl.Cache.Peek(d.Tag)
	if !ok {
		var err error
		line, err = hl.Svc.DemandFetch(p, d.Tag)
		if err != nil {
			hl.Audit.Record(attr.Decision{
				T: p.Now(), Actor: "repair", Subject: fmt.Sprintf("seg:%d", d.Tag),
				Seg: d.Tag, Verdict: attr.VerdictDeferred, Reason: "source fetch failed: " + err.Error(),
			})
			return 0, nil
		}
	}
	repaired := 0
	for missing := d.Target - d.Copies; missing > 0; missing-- {
		rtag, ok := hl.allocRepairTarget(p, d.Tag)
		if !ok {
			hl.Audit.Record(attr.Decision{
				T: p.Now(), Actor: "repair", Subject: fmt.Sprintf("seg:%d", d.Tag),
				Seg: d.Tag, Verdict: attr.VerdictDeferred, Reason: "no placeable replica segment",
				Inputs: []attr.Input{attr.In("missing", float64(missing))},
			})
			break
		}
		// Catalog before copyout: the CopyoutDone hook must see rtag as
		// a replica so it is never counted as live primary data.
		hl.replicaOf[d.Tag] = append(hl.replicaOf[d.Tag], rtag)
		hl.replicaTag[rtag] = d.Tag
		for hl.Svc.OutstandingCopyouts() >= hl.Repair.MaxInFlight {
			hl.Svc.WaitCopyoutProgress(p)
		}
		hl.Svc.ScheduleCopyoutAs(p, rtag, line.DiskSeg, d.Tag)
		hl.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "repair", Subject: fmt.Sprintf("seg:%d", rtag),
			Seg: d.Tag, Verdict: attr.VerdictRepaired, Reason: "replica re-copied",
			Inputs: []attr.Input{attr.In("replica", float64(rtag)), attr.In("copies", float64(d.Copies+repaired+1))},
		})
		hl.Obs.Counter("repair.segments_repaired").Add(1)
		hl.Obs.Counter("repair.bytes_repaired").Add(int64(hl.Amap.SegBlocks() * lfs.BlockSize))
		repaired++
	}
	return repaired, nil
}

// allocRepairTarget allocates a replica segment under the repair retry
// policy: placement can fail transiently (a library rejoining, the
// cleaner freeing space), so each deficit gets a few backed-off chances
// before deferring.
func (hl *HighLight) allocRepairTarget(p *sim.Proc, primary int) (int, bool) {
	for attempt := 0; ; attempt++ {
		if rtag, ok := hl.allocReplicaTag(primary); ok {
			return rtag, true
		}
		if attempt >= hl.Repair.Retries {
			return 0, false
		}
		if hl.Repair.Backoff > 0 {
			p.Sleep(hl.Repair.Backoff)
		}
	}
}

// ReplicaCatalog returns a copy of the in-memory replica catalog:
// primary tertiary segment index → replica indices, placement order.
func (hl *HighLight) ReplicaCatalog() map[int][]int {
	out := make(map[int][]int, len(hl.replicaOf))
	for p, rs := range hl.replicaOf {
		out[p] = append([]int(nil), rs...)
	}
	return out
}

// RestoreReplicaCatalog re-installs a replica catalog captured by
// ReplicaCatalog in an earlier process. The catalog is in-memory state,
// so image tooling persists it across mounts and replays it here after
// loading; entries whose tertiary segment no longer carries data or a
// reservation are dropped rather than trusted.
func (hl *HighLight) RestoreReplicaCatalog(m map[int][]int) {
	for prim, reps := range m {
		if prim < 0 || prim >= hl.FS.TsegCount() {
			continue
		}
		for _, r := range reps {
			if r < 0 || r >= hl.FS.TsegCount() {
				continue
			}
			if hl.FS.TsegUsage(r).Flags&(lfs.SegDirty|lfs.SegNoStore) == 0 {
				continue
			}
			hl.replicaOf[prim] = append(hl.replicaOf[prim], r)
			hl.replicaTag[r] = prim
		}
	}
}

// LibraryStatus summarizes one library's health and capacity for reports.
type LibraryStatus struct {
	ID          int
	Name        string
	Down        bool
	TotalSegs   int
	FreeSegs    int // allocatable (clean, uncached, not reserved)
	UsedSegs    int // dirty segments holding data
	NoStoreSegs int // reserved: replicas, retired tails, bad media
}

// LibraryStatuses reports per-library health and capacity, device order.
func (hl *HighLight) LibraryStatuses() []LibraryStatus {
	out := make([]LibraryStatus, len(hl.libs))
	for d, l := range hl.libs {
		st := LibraryStatus{ID: l.ID(), Name: l.Name(), Down: l.Down()}
		start, n := hl.deviceTsegRange(d)
		end := start + n
		if end > hl.FS.TsegCount() {
			end = hl.FS.TsegCount()
		}
		st.TotalSegs = end - start
		for idx := start; idx < end; idx++ {
			su := hl.FS.TsegUsage(idx)
			switch {
			case su.Flags&lfs.SegDirty != 0:
				st.UsedSegs++
			case su.Flags&lfs.SegNoStore != 0:
				st.NoStoreSegs++
			case su.Flags == 0 && su.LiveBytes == 0:
				if _, cached := hl.Cache.Peek(idx); !cached {
					st.FreeSegs++
				}
			}
		}
		out[d] = st
	}
	return out
}

// StartRepairDaemon runs RepairPass every `every` of virtual time. A
// pass is skipped while a staging segment is open (the migrator owns
// the copyout failure queues mid-batch) and repair errors degrade to an
// audit record rather than killing the daemon.
func (hl *HighLight) StartRepairDaemon(every sim.Time) {
	hl.K.GoDaemon("hl-repair", func(p *sim.Proc) {
		for {
			p.Sleep(every)
			if hl.StagingOpen() || hl.Svc.OutstandingCopyouts() > 0 {
				continue
			}
			if hl.RepairThrottle != nil && hl.RepairThrottle() {
				continue // brownout: repair yields to interactive traffic
			}
			if _, err := hl.RepairPass(p); err != nil {
				hl.Audit.Record(attr.Decision{
					T: p.Now(), Actor: "repair", Subject: "pass",
					Seg: -1, Verdict: attr.VerdictDeferred, Reason: err.Error(),
				})
			}
		}
	})
}
