package core

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// twoLibraryRig builds a two-changer HighLight instance with replication
// factor 2 and a buffer cache smaller than the test file, so re-reads
// must traverse the tertiary fetch path.
func twoLibraryRig(t *testing.T, p *sim.Proc, k *sim.Kernel) *HighLight {
	t.Helper()
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	jb0 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	jb1 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	hl, err := New(p, Config{
		SegBlocks:   64,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{jb0, jb1},
		CacheSegs:   24,
		MaxInodes:   256,
		Replicas:    2,
		BufferBytes: 64 * lfs.BlockSize,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return hl
}

// migrateTestFile creates /data, migrates it, and drops every cache line
// so later reads hit tertiary media. Returns the file and its contents.
func migrateTestFile(t *testing.T, p *sim.Proc, hl *HighLight) (*lfs.File, []byte) {
	t.Helper()
	f, err := hl.FS.Create(p, "/data")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 120*lfs.BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := hl.FS.Sync(p); err != nil {
		t.Fatal(err)
	}
	if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
		t.Fatal(err)
	}
	if err := hl.CompleteMigration(p); err != nil {
		t.Fatal(err)
	}
	for _, l := range hl.Cache.Lines() {
		if !l.Staging && l.Pins == 0 {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f, data
}

func auditVerdicts(hl *HighLight) map[string]int {
	out := map[string]int{}
	for _, d := range hl.Audit.All() {
		out[d.Verdict]++
	}
	return out
}

// TestLibraryFailoverAndRepair is the tentpole acceptance check: with two
// libraries at replication factor 2, permanently failing either single
// library loses nothing — reads are served from surviving copies and a
// repair pass restores full replication on the healthy library, with the
// under-replication gauge back at zero and the placement, routing, and
// repair verdicts in the decision audit.
func TestLibraryFailoverAndRepair(t *testing.T) {
	for _, failDev := range []int{0, 1} {
		t.Run(fmt.Sprintf("failLibrary%d", failDev), func(t *testing.T) {
			k := sim.NewKernel()
			k.RunProc(func(p *sim.Proc) {
				hl := twoLibraryRig(t, p, k)
				f, data := migrateTestFile(t, p, hl)

				// Cross-library placement: every replica must live on a
				// different device than its primary.
				for prim, reps := range hl.ReplicaCatalog() {
					pd, _, _, _ := hl.Amap.Loc(hl.Amap.SegForIndex(prim))
					if len(reps) == 0 {
						t.Fatalf("primary %d has no replica", prim)
					}
					for _, r := range reps {
						rd, _, _, _ := hl.Amap.Loc(hl.Amap.SegForIndex(r))
						if rd == pd {
							t.Fatalf("replica %d of %d placed in the same library %d", r, prim, pd)
						}
					}
				}
				if len(hl.ReplicationDeficits()) != 0 {
					t.Fatalf("deficits before any failure: %+v", hl.ReplicationDeficits())
				}

				hl.Libraries()[failDev].SetDown(true)
				defs := hl.ReplicationDeficits()
				if len(defs) == 0 {
					t.Fatal("library failure produced no replication deficit")
				}
				for _, d := range defs {
					if len(d.Sources) == 0 {
						t.Fatalf("segment %d has no surviving repair source", d.Tag)
					}
				}

				// Reads must keep working through the surviving copies.
				got := make([]byte, len(data))
				if _, err := f.ReadAt(p, got, 0); err != nil {
					t.Fatalf("read with library %d down: %v", failDev, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatal("read with a library down returned corrupt data")
				}
				if failDev == 0 && hl.Svc.Stats().ReplicaRedirects == 0 {
					t.Fatal("primary library down but no fetch was redirected to a replica")
				}

				repaired, err := hl.RepairPass(p)
				if err != nil {
					t.Fatalf("repair pass: %v", err)
				}
				if repaired == 0 {
					t.Fatal("repair pass repaired nothing")
				}
				if defs := hl.ReplicationDeficits(); len(defs) != 0 {
					t.Fatalf("deficits after repair: %+v", defs)
				}
				if g := hl.Obs.Gauge("repair.under_replicated").Value(); g != 0 {
					t.Fatalf("under-replication gauge = %d after repair", g)
				}

				vs := auditVerdicts(hl)
				if vs[attr.VerdictPlaced] == 0 {
					t.Fatal("no placement verdict in the decision audit")
				}
				if vs[attr.VerdictRepaired] == 0 {
					t.Fatal("no repair verdict in the decision audit")
				}
				if failDev == 0 && vs[attr.VerdictRouted] == 0 {
					t.Fatal("no routing verdict in the decision audit")
				}

				// The repaired copies are real: with the failed library still
				// down, reads keep verifying after the cache is dropped again.
				for _, l := range hl.Cache.Lines() {
					if !l.Staging && l.Pins == 0 {
						if err := hl.Svc.Eject(l.Tag); err != nil {
							t.Fatal(err)
						}
					}
				}
				if _, err := f.ReadAt(p, got, 0); err != nil {
					t.Fatalf("read after repair: %v", err)
				}
				if !bytes.Equal(got, data) {
					t.Fatal("read after repair returned corrupt data")
				}
			})
			k.Stop()
		})
	}
}

// TestRepairBlocksCleanerOnSoleReplica pins the repair-vs-cleaner
// ordering: while a replica volume holds the only reachable copies (the
// primaries' library is down), both the volume selector and CleanVolume
// itself must refuse to collect it; once a repair pass has re-replicated
// the data elsewhere, the volume becomes collectible and reads survive
// its erasure.
func TestRepairBlocksCleanerOnSoleReplica(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl := twoLibraryRig(t, p, k)
		f, data := migrateTestFile(t, p, hl)

		// Primaries land on device 0, replicas on device 1 volume 0.
		hl.Libraries()[0].SetDown(true)

		if u, ok := hl.SelectCleanableVolume(); ok && u.Device == 1 && u.Volume == 0 {
			t.Fatal("selector picked the sole-surviving-replica volume")
		}
		found := false
		for _, d := range hl.Audit.All() {
			if d.Verdict == attr.VerdictSkipped && d.Reason == "sole surviving replica; repair pending" {
				found = true
			}
		}
		if !found {
			t.Fatal("selector did not audit the sole-replica skip")
		}
		if _, err := hl.CleanVolume(p, 1, 0); !errors.Is(err, ErrSoleSurvivingReplica) {
			t.Fatalf("CleanVolume on sole-replica volume: got %v, want ErrSoleSurvivingReplica", err)
		}

		// Repair re-replicates onto other volumes; the volume is then
		// collectible, and the data survives its erasure.
		if n, err := hl.RepairPass(p); err != nil || n == 0 {
			t.Fatalf("repair pass: n=%d err=%v", n, err)
		}
		if _, err := hl.CleanVolume(p, 1, 0); err != nil {
			t.Fatalf("CleanVolume after repair: %v", err)
		}
		for _, l := range hl.Cache.Lines() {
			if !l.Staging && l.Pins == 0 {
				if err := hl.Svc.Eject(l.Tag); err != nil {
					t.Fatal(err)
				}
			}
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(p, got, 0); err != nil {
			t.Fatalf("read after erasing repaired volume: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data corrupted after cleaning the old replica volume")
		}
	})
	k.Stop()
}

// libSoakSeed drives the library-outage chaos soak deterministically.
const libSoakSeed = 20260808

// runLibraryOutageSoak runs a randomized workload on a two-library,
// replication-factor-2 instance while library 0 is killed outright
// mid-run and revived later, with the repair daemon running throughout.
// Zero data loss is required — every file must verify byte-exact at
// every point — and the run must end fully re-replicated.
func runLibraryOutageSoak(t *testing.T) string {
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(160*segBlocks), bus)
	jb0 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 24, segBlocks*lfs.BlockSize, bus)
	jb1 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 24, segBlocks*lfs.BlockSize, bus)
	cfg := Config{
		SegBlocks:   segBlocks,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{jb0, jb1},
		CacheSegs:   20,
		MaxInodes:   512,
		BufferBytes: 1 << 20,
		Replicas:    2,
		RepairEvery: 10 * sim.Time(time.Second),
	}

	model := map[string][]byte{}
	var names []string
	rng := sim.NewRNG(libSoakSeed)
	var digest string

	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		hl.FS.AttachCleaner(6, 10)

		// Kill the whole first library mid-workload; revive it later.
		plan := fault.NewPlan(fault.Config{Seed: libSoakSeed})
		plan.AddLibraryOutage(hl.Libraries()[0], fault.LibraryOutage{
			Start: 30 * sim.Time(time.Second),
			End:   150 * sim.Time(time.Second),
		})
		plan.Start(k)

		verify := func(name string) {
			f, err := hl.FS.Open(p, name)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			want := model[name]
			got := make([]byte, len(want))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatalf("read %s: %v (a replicated tier must lose nothing on a single library outage)", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s corrupted", name)
			}
		}

		for op := 0; op < 250; op++ {
			p.Sleep(time.Duration(rng.Intn(1000)) * time.Millisecond)
			switch r := rng.Intn(100); {
			case r < 30 || len(names) == 0: // create
				if len(names) >= 25 {
					continue
				}
				name := "/c" + itoa(op)
				data := make([]byte, rng.Intn(8*lfs.BlockSize)+1)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				f, err := hl.FS.Create(p, name)
				if err != nil {
					t.Fatalf("op %d create: %v", op, err)
				}
				if _, err := f.WriteAt(p, data, 0); err != nil {
					t.Fatalf("op %d write: %v", op, err)
				}
				model[name] = data
				names = append(names, name)
			case r < 45: // overwrite a slice
				name := names[rng.Intn(len(names))]
				cur := model[name]
				off := rng.Intn(len(cur))
				patch := make([]byte, rng.Intn(2*lfs.BlockSize)+1)
				for i := range patch {
					patch[i] = byte(rng.Intn(256))
				}
				f, err := hl.FS.Open(p, name)
				if err == nil {
					_, err = f.WriteAt(p, patch, int64(off))
				}
				if err != nil {
					t.Fatalf("op %d overwrite: %v", op, err)
				}
				if off+len(patch) > len(cur) {
					grown := make([]byte, off+len(patch))
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], patch)
				model[name] = cur
			case r < 70: // migrate a random file
				name := names[rng.Intn(len(names))]
				f, err := hl.FS.Open(p, name)
				if err == nil {
					_, err = hl.MigrateFiles(p, []uint32{f.Inum()}, rng.Intn(2) == 0)
				}
				if err != nil && !errors.Is(err, ErrNoTertiarySpace) {
					t.Fatalf("op %d migrate %s: %v", op, name, err)
				}
				if err := hl.CompleteMigration(p); err != nil && !errors.Is(err, ErrNoTertiarySpace) {
					t.Fatalf("op %d complete: %v", op, err)
				}
			case r < 78: // eject cache lines
				for _, l := range hl.Cache.Lines() {
					if l.Staging || l.Pins > 0 {
						continue
					}
					if rng.Intn(2) == 0 {
						if err := hl.Svc.Eject(l.Tag); err != nil {
							t.Fatal(err)
						}
					}
				}
			case r < 92: // verify a random file
				verify(names[rng.Intn(len(names))])
			default: // disk cleaning
				segs := hl.FS.SelectCleanable(2)
				if len(segs) > 0 {
					if _, err := hl.FS.CleanSegments(p, segs); err != nil {
						t.Fatalf("op %d clean: %v", op, err)
					}
				}
			}
		}

		// Run past the revival edge, settle, and repair whatever is left.
		if end := 155 * sim.Time(time.Second); p.Now() < end {
			p.Sleep(end - p.Now())
		}
		if hl.Libraries()[0].Down() {
			t.Fatal("library 0 was not revived by the fault plan")
		}
		if err := hl.CompleteMigration(p); err != nil && !errors.Is(err, ErrNoTertiarySpace) {
			t.Fatalf("final complete: %v", err)
		}
		if _, err := hl.RepairPass(p); err != nil {
			t.Fatalf("final repair: %v", err)
		}
		if defs := hl.ReplicationDeficits(); len(defs) != 0 {
			t.Fatalf("still under-replicated after revival + repair: %+v", defs)
		}
		if g := hl.Obs.Gauge("repair.under_replicated").Value(); g != 0 {
			t.Fatalf("under-replication gauge = %d at end", g)
		}
		repairedSegs := hl.Obs.Counter("repair.segments_repaired").Value()
		if repairedSegs == 0 {
			t.Fatal("outage window triggered no repairs (daemon never re-replicated)")
		}
		for _, name := range names {
			verify(name)
		}
		if err := hl.FS.Checkpoint(p); err != nil {
			t.Fatal(err)
		}

		h := sha256.New()
		for _, name := range names {
			fmt.Fprintf(h, "%s:%x\n", name, sha256.Sum256(model[name]))
		}
		fmt.Fprintf(h, "svc:%+v\n", hl.Svc.Stats())
		fmt.Fprintf(h, "repaired:%d bytes:%d audit:%d\n",
			repairedSegs, hl.Obs.Counter("repair.bytes_repaired").Value(), hl.Audit.Total())
		fmt.Fprintf(h, "now:%d\n", int64(p.Now()))
		digest = fmt.Sprintf("%x files=%d repaired=%d redirects=%d",
			h.Sum(nil), len(names), repairedSegs, hl.Svc.Stats().ReplicaRedirects)
	})
	k.Stop()
	return digest
}

// TestChaosLibraryOutageSoak kills and revives an entire library
// mid-workload: no data loss, eventual re-replication, and the whole run
// bit-identical when repeated with the same seed.
func TestChaosLibraryOutageSoak(t *testing.T) {
	d1 := runLibraryOutageSoak(t)
	d2 := runLibraryOutageSoak(t)
	if d1 != d2 {
		t.Fatalf("library-outage soak is not deterministic:\n  run 1: %s\n  run 2: %s", d1, d2)
	}
}
