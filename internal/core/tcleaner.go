package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Tertiary media cleaning — the paper's §10 future work: "HighLight will
// need a tertiary cleaning mechanism that examines tertiary volumes, a
// task that would best be done with at least two reader/writer devices to
// avoid having to swap between the being-cleaned volume and the
// destination volume."
//
// CleanVolume reclaims one whole medium at a time (minimizing media swaps
// and seek passes, §6.5): every segment of the volume is fetched through
// the segment cache, its live blocks are re-staged onto the current
// migration volume, and the emptied medium is erased and returned to
// service. With the jukebox's write drive pinned to the destination volume
// and reads served by the other drive, the being-cleaned and destination
// volumes never contend for one drive.

// VolumeUsage summarizes one tertiary volume for cleaning decisions.
type VolumeUsage struct {
	Device, Volume int
	LiveBytes      int64
	UsedSegs       int // segments holding (possibly dead) data
	NoStoreSegs    int // segments with no storage (end-of-medium tail)
}

// VolumeUsages reports per-volume statistics from the tsegfile.
func (hl *HighLight) VolumeUsages() []VolumeUsage {
	var out []VolumeUsage
	for d, g := range hl.Amap.Devices() {
		for v := 0; v < g.Vols; v++ {
			u := VolumeUsage{Device: d, Volume: v}
			for s := 0; s < g.SegsPerVol; s++ {
				idx, _ := hl.Amap.TertIndex(hl.Amap.SegForLoc(d, v, s))
				su := hl.FS.TsegUsage(idx)
				if su.Flags&lfs.SegNoStore != 0 {
					u.NoStoreSegs++
				}
				if su.Flags&lfs.SegDirty != 0 {
					u.UsedSegs++
					u.LiveBytes += int64(su.LiveBytes)
				}
			}
			out = append(out, u)
		}
	}
	return out
}

// SelectCleanableVolume picks the used volume with the least live data —
// the cheapest whole-medium reclaim. Volumes holding the current staging
// target are skipped. ok is false when no used volume exists.
func (hl *HighLight) SelectCleanableVolume() (VolumeUsage, bool) {
	usages := hl.VolumeUsages()
	sort.Slice(usages, func(a, b int) bool {
		if usages[a].LiveBytes != usages[b].LiveBytes {
			return usages[a].LiveBytes < usages[b].LiveBytes
		}
		return usages[a].Volume < usages[b].Volume
	})
	now := hl.K.Now()
	for _, u := range usages {
		if u.UsedSegs == 0 && u.NoStoreSegs == 0 {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "tcleaner", Subject: fmt.Sprintf("vol:%d/%d", u.Device, u.Volume),
				Seg: -1, Verdict: attr.VerdictSkipped, Reason: "volume unused",
			})
			continue
		}
		if hl.volumeHoldsSoleCopy(u.Device, u.Volume) {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "tcleaner", Subject: fmt.Sprintf("vol:%d/%d", u.Device, u.Volume),
				Seg: -1, Verdict: attr.VerdictSkipped, Reason: "sole surviving replica; repair pending",
			})
			continue
		}
		if pinned := hl.volumePinnedSegs(u.Device, u.Volume); len(pinned) > 0 {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "tcleaner", Subject: fmt.Sprintf("vol:%d/%d", u.Device, u.Volume),
				Seg: pinned[0], Verdict: attr.VerdictPinGuard, Reason: "volume holds HSM-pinned segments",
				Inputs: []attr.Input{attr.In("pinned_segs", float64(len(pinned)))},
			})
			continue
		}
		hl.Audit.Record(attr.Decision{
			T: now, Actor: "tcleaner", Subject: fmt.Sprintf("vol:%d/%d", u.Device, u.Volume),
			Seg: -1, Verdict: attr.VerdictSelected, Reason: "least live data among used volumes",
			Inputs: []attr.Input{
				attr.In("live_bytes", float64(u.LiveBytes)),
				attr.In("used_segs", float64(u.UsedSegs)),
				attr.In("no_store_segs", float64(u.NoStoreSegs)),
			},
		})
		return u, true
	}
	return VolumeUsage{}, false
}

// ErrSoleSurvivingReplica guards the repair/cleaner ordering: a volume
// holding the only reachable copy of some segment (its primary's library
// is down, every other replica gone) must not be collected until the
// repair pass has re-replicated it elsewhere.
var ErrSoleSurvivingReplica = errors.New("core: volume holds a sole surviving replica; repair pending")

// ErrVolumePinned guards HSM pins against whole-medium reclaim: cleaning
// re-stages live blocks onto a *different* volume and erases the medium,
// which would move pinned data the HSM promised to keep in place. The
// cleaner routes around pinned volumes until the pins drop.
var ErrVolumePinned = errors.New("core: volume holds HSM-pinned segments")

// volumePinnedSegs lists the HSM-pinned tertiary segment indices stored on
// (device, vol), ascending.
func (hl *HighLight) volumePinnedSegs(device, vol int) []int {
	g := hl.Amap.Devices()[device]
	var pinned []int
	for s := 0; s < g.SegsPerVol; s++ {
		idx, _ := hl.Amap.TertIndex(hl.Amap.SegForLoc(device, vol, s))
		if hl.SegmentPinned(idx) {
			pinned = append(pinned, idx)
		}
	}
	return pinned
}

// volumeHoldsSoleCopy reports whether erasing (device, vol) would destroy
// the last reachable copy of any segment. Primaries on the volume are
// safe — CleanVolume re-stages their live blocks before erasing — but
// replicas are dropped without relocation, which is only sound while
// another copy survives.
func (hl *HighLight) volumeHoldsSoleCopy(device, vol int) bool {
	g := hl.Amap.Devices()[device]
	for s := 0; s < g.SegsPerVol; s++ {
		idx, _ := hl.Amap.TertIndex(hl.Amap.SegForLoc(device, vol, s))
		primary, isReplica := hl.replicaTag[idx]
		if !isReplica {
			continue
		}
		// A survivor must live off this volume (the erase destroys every
		// copy on it) and in a library that is up.
		onVolume := func(t int) bool {
			td, tv, _, ok := hl.Amap.Loc(hl.Amap.SegForIndex(t))
			return ok && td == device && tv == vol
		}
		survivors := 0
		if !hl.tagLibDown(primary) && !onVolume(primary) && hl.FS.TsegUsage(primary).Flags&lfs.SegDirty != 0 {
			survivors++
		}
		for _, r := range hl.replicaOf[primary] {
			if r != idx && !hl.tagLibDown(r) && !onVolume(r) {
				survivors++
			}
		}
		if survivors == 0 {
			return true
		}
	}
	return false
}

// EraseVolumer is implemented by jukeboxes that can reclaim erased media
// (the Footprint interface itself stays read/write-only; WORM devices
// simply do not implement this).
type EraseVolumer interface {
	EraseVolume(vol int)
}

// CleanVolume reclaims tertiary volume (device, vol): live blocks move to
// fresh segments on the current migration volume, the medium is erased,
// and its segments return to the allocatable pool. It returns the number
// of blocks relocated. The caller should invoke CompleteMigration
// afterwards to drain the re-staging copyouts.
func (hl *HighLight) CleanVolume(p *sim.Proc, device, vol int) (int, error) {
	t0 := p.Now()
	defer func() {
		hl.Obs.Span("core", "core.clean", "CleanVolume", t0,
			obs.Arg{Key: "device", Val: int64(device)}, obs.Arg{Key: "vol", Val: int64(vol)})
	}()
	if hl.volumeHoldsSoleCopy(device, vol) {
		return 0, fmt.Errorf("core: cleaning volume %d/%d: %w", device, vol, ErrSoleSurvivingReplica)
	}
	if pinned := hl.volumePinnedSegs(device, vol); len(pinned) > 0 {
		hl.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "tcleaner", Subject: fmt.Sprintf("vol:%d/%d", device, vol),
			Seg: pinned[0], Verdict: attr.VerdictPinGuard, Reason: "refusing to clean a volume with HSM-pinned segments",
			Inputs: []attr.Input{attr.In("pinned_segs", float64(len(pinned)))},
		})
		return 0, fmt.Errorf("core: cleaning volume %d/%d: %w", device, vol, ErrVolumePinned)
	}
	g := hl.Amap.Devices()[device]
	// Fence allocation away from this volume first: an open staging
	// segment on it is closed out, and its free segments are marked
	// no-storage so re-staged data cannot land on the medium about to
	// be erased.
	if hl.stageTag >= 0 {
		if d, v, _, ok := hl.Amap.Loc(hl.Amap.SegForIndex(hl.stageTag)); ok && d == device && v == vol {
			if err := hl.finishStaging(p); err != nil {
				return 0, err
			}
			hl.Svc.DrainCopyouts(p)
		}
	}
	var cleanedIdx []int
	for s := 0; s < g.SegsPerVol; s++ {
		idx, _ := hl.Amap.TertIndex(hl.Amap.SegForLoc(device, vol, s))
		cleanedIdx = append(cleanedIdx, idx)
		if hl.FS.TsegUsage(idx).Flags == 0 {
			hl.FS.MarkTsegNoStore(idx)
		}
	}
	relocated := 0
	for s := 0; s < g.SegsPerVol; s++ {
		seg := hl.Amap.SegForLoc(device, vol, s)
		idx, _ := hl.Amap.TertIndex(seg)
		su := hl.FS.TsegUsage(idx)
		if su.Flags&lfs.SegDirty == 0 {
			hl.Audit.Record(attr.Decision{
				T: p.Now(), Actor: "tcleaner", Subject: fmt.Sprintf("seg:%d", idx),
				Seg: idx, Verdict: attr.VerdictSkipped, Reason: "no live data",
				Inputs: []attr.Input{attr.In("heat", hl.Heat.Heat(idx, p.Now()))},
			})
			continue
		}
		n, err := hl.cleanTertSegment(p, idx, seg)
		if err != nil {
			return relocated, fmt.Errorf("core: cleaning volume %d/%d segment %d: %w", device, vol, s, err)
		}
		relocated += n
		hl.Heat.Touch(idx, attr.Clean, p.Now())
		hl.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "tcleaner", Subject: fmt.Sprintf("seg:%d", idx),
			Seg: idx, Verdict: attr.VerdictCleaned,
			Inputs: []attr.Input{
				attr.In("live_bytes", float64(su.LiveBytes)),
				attr.In("blocks_moved", float64(n)),
				attr.In("heat", hl.Heat.Heat(idx, p.Now())),
			},
		})
	}
	// Close out the re-staged data before touching the medium: the old
	// copies must never be the sole ones when the volume is erased.
	if err := hl.CompleteMigration(p); err != nil {
		return relocated, err
	}
	// Drop any cache lines for the cleaned segments and reset the
	// tsegfile entries; then erase the medium so it can be rewritten.
	for _, idx := range cleanedIdx {
		if l, ok := hl.Cache.Peek(idx); ok && !l.Staging && l.Pins == 0 {
			seg, err := hl.Cache.Evict(l)
			if err != nil {
				return relocated, fmt.Errorf("core: dropping cleaned line %d: %w", idx, err)
			}
			hl.FS.SetCacheBinding(seg, lfs.NilCacheTag, false)
			hl.Cache.Release(seg)
		}
		hl.FS.ResetTseg(idx)
		// Invalidate replica-catalog entries touching the erased medium:
		// replicas stored here are gone, and primaries stored here were
		// relocated, so their replicas are orphaned hints.
		if primary, isReplica := hl.replicaTag[idx]; isReplica {
			hl.dropReplica(primary, idx)
		}
		if alts, isPrimary := hl.replicaOf[idx]; isPrimary {
			for _, a := range alts {
				delete(hl.replicaTag, a)
			}
			delete(hl.replicaOf, idx)
		}
	}
	if ev, ok := hl.jukes[device].(EraseVolumer); ok {
		ev.EraseVolume(vol)
	}
	// Cleaned segments below the allocation cursor become usable again.
	if low, _ := hl.Amap.TertIndex(hl.Amap.SegForLoc(device, vol, 0)); low < hl.nextTert {
		hl.nextTert = low
	}
	hl.nextTert = hl.scanNextTert()
	return relocated, hl.FS.Checkpoint(p)
}

// RestageTertSegment re-stages the live contents of one tertiary segment
// onto the current migration volume, leaving the old copy dead (its live
// bytes drop to zero as pointers move). It is used by the whole-volume
// cleaner and by the §5.4 rewrite-on-fetch rearrangement policy. The
// caller completes the migration (CompleteMigration) to make the move
// durable.
func (hl *HighLight) RestageTertSegment(p *sim.Proc, idx int) (int, error) {
	return hl.cleanTertSegment(p, idx, hl.Amap.SegForIndex(idx))
}

// cleanTertSegment re-stages the live blocks of one tertiary segment.
func (hl *HighLight) cleanTertSegment(p *sim.Proc, idx int, seg addr.SegNo) (int, error) {
	// Fetch through the cache (a whole-medium clean walks the volume
	// sequentially, so fetches are seek-cheap on the jukebox).
	if _, ok := hl.Cache.Peek(idx); !ok {
		if _, err := hl.Svc.DemandFetch(p, idx); err != nil {
			return 0, err
		}
	}
	line, _ := hl.Cache.Peek(idx)
	line.Pins++
	defer func() { line.Pins-- }()
	segBytes := hl.Amap.SegBlocks() * lfs.BlockSize
	raw := make([]byte, segBytes)
	if err := hl.FS.ReadRawBlocks(p, hl.Amap.BlockOf(line.DiskSeg, 0), raw); err != nil {
		return 0, err
	}
	refs, inums, err := hl.parseSegmentImage(raw, seg)
	if err != nil {
		return 0, err
	}
	// Live inodes whose imap entry points into this segment re-stage too.
	var liveInums []uint32
	for _, ir := range inums {
		e := hl.FS.Imap(ir.Inum)
		if e.Addr == ir.Addr && e.Slot == ir.Slot && e.Version == ir.Version {
			liveInums = append(liveInums, ir.Inum)
		}
	}
	n, err := hl.MigrateRefs(p, refs)
	if err != nil {
		return 0, err
	}
	moved := int(n / lfs.BlockSize)
	if len(liveInums) > 0 {
		if err := hl.stageInodes(p, liveInums); err != nil {
			return moved, err
		}
		moved += len(liveInums)
	}
	return moved, nil
}

// parseSegmentImage decodes the partial segments of a raw segment image
// whose blocks are addressed at base segment seg, returning block refs and
// inode instances.
func (hl *HighLight) parseSegmentImage(raw []byte, seg addr.SegNo) ([]lfs.BlockRef, []lfs.InodeRef, error) {
	var refs []lfs.BlockRef
	var inos []lfs.InodeRef
	base := hl.Amap.BlockOf(seg, 0)
	off := 0
	for off+1 <= hl.Amap.SegBlocks() {
		sum, err := lfs.DecodeSummary(raw[off*lfs.BlockSize : (off+1)*lfs.BlockSize])
		if err != nil {
			break
		}
		n := int(sum.NBlocks)
		if n < 1 || off+n > hl.Amap.SegBlocks() {
			break
		}
		bi := off + 1
		for _, fi := range sum.Finfos {
			for _, lbn := range fi.Lbns {
				refs = append(refs, lfs.BlockRef{
					Inum:    fi.Inum,
					Version: fi.Version,
					Lbn:     lbn,
					Addr:    base + addr.BlockNo(bi),
				})
				bi++
			}
		}
		for _, ia := range sum.InoAddrs {
			blkIdx := hl.Amap.OffOf(ia)
			if hl.Amap.SegOf(ia) != seg || blkIdx >= hl.Amap.SegBlocks() {
				continue
			}
			blk := raw[blkIdx*lfs.BlockSize : (blkIdx+1)*lfs.BlockSize]
			for slot := 0; slot < lfs.InodesPerBlock; slot++ {
				var ino lfs.Inode
				lfs.DecodeInode(&ino, blk[slot*lfs.InodeSize:])
				if ino.Inum == 0 || int(ino.Inum) >= hl.FS.MaxInodes() {
					continue
				}
				inos = append(inos, lfs.InodeRef{
					Inum:    ino.Inum,
					Version: ino.Version,
					Addr:    ia,
					Slot:    uint32(slot),
				})
			}
		}
		off += n
	}
	return refs, inos, nil
}
