package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// hlEnv is a small HighLight instance: 64 KB segments (16 blocks) for fast
// tests, one RZ57, one 2-drive MO jukebox.
type hlEnv struct {
	k    *sim.Kernel
	bus  *dev.Bus
	disk *dev.Disk
	juke *jukebox.Jukebox
	hl   *HighLight
}

func newHL(t *testing.T, diskSegs, cacheSegs, vols, segsPerVol int) *hlEnv {
	t.Helper()
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(diskSegs*segBlocks), bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, vols, segsPerVol, segBlocks*lfs.BlockSize, bus)
	env := &hlEnv{k: k, bus: bus, disk: disk, juke: juke}
	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, Config{
			SegBlocks:   segBlocks,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   cacheSegs,
			MaxInodes:   256,
			BufferBytes: 1 << 20,
		}, true)
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		env.hl = hl
	})
	return env
}

func (e *hlEnv) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e.k.RunProc(fn)
}

func put(t *testing.T, p *sim.Proc, hl *HighLight, path string, data []byte) *lfs.File {
	t.Helper()
	f, err := hl.FS.Create(p, path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return f
}

func get(t *testing.T, p *sim.Proc, f *lfs.File) []byte {
	t.Helper()
	sz, err := f.Size(p)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, sz)
	if _, err := f.ReadAt(p, buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}

func pat(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(tag)*37+i) ^ byte(i>>9)
	}
	return b
}

func TestMigrateAndReadBackThroughCache(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(1, 40*lfs.BlockSize) // spans multiple staging segments
		f := put(t, p, hl, "/sat-image", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatalf("complete: %v", err)
		}
		if hl.Svc.Stats().Copyouts == 0 {
			t.Fatal("no copyouts performed")
		}
		// Read while cached: data must be intact.
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("cached read differs")
		}
	})
	e.k.Stop()
}

func TestDemandFetchAfterEviction(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(2, 30*lfs.BlockSize)
		f := put(t, p, hl, "/archive", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Eject every cached line and drop FS buffers: the next read
		// must demand-fetch from the jukebox.
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatalf("eject %d: %v", l.Tag, err)
			}
		}
		if hl.Cache.Len() != 0 {
			t.Fatal("cache not empty after ejection")
		}
		fetchesBefore := hl.Svc.Stats().Fetches
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("demand-fetched read differs")
		}
		if hl.Svc.Stats().Fetches <= fetchesBefore {
			t.Fatal("read did not demand-fetch")
		}
	})
	e.k.Stop()
}

func TestMigrateInodesAndIndirectBlocks(t *testing.T) {
	e := newHL(t, 96, 10, 4, 24)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		// 40 blocks: direct + single indirect.
		data := pat(3, 40*lfs.BlockSize)
		f := put(t, p, hl, "/deep", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, true); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// The inode map must now point at a tertiary address.
		e := hl.FS.Imap(f.Inum())
		if !hl.Amap.IsTertiarySeg(hl.Amap.SegOf(e.Addr)) {
			t.Fatalf("inode at %d still on disk after inode migration", e.Addr)
		}
		// Cold read: drop buffers and inode cache, eject cache lines.
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		got := get(t, p, f)
		if !bytes.Equal(got, data) {
			t.Fatal("data corrupted after inode+indirect migration")
		}
	})
	e.k.Stop()
}

func TestPartialFileMigration(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(4, 10*lfs.BlockSize)
		f := put(t, p, hl, "/db", data)
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		refs, err := hl.FS.FileBlockRefs(p, f.Inum())
		if err != nil {
			t.Fatal(err)
		}
		// Migrate only blocks 0..4 (block-based migration, §5.2).
		var cold []lfs.BlockRef
		for _, r := range refs {
			if r.Lbn >= 0 && r.Lbn < 5 {
				cold = append(cold, r)
			}
		}
		if _, err := hl.MigrateRefs(p, cold); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Blocks 5.. must still be disk-resident; blocks 0..4 tertiary.
		refs2, _ := hl.FS.FileBlockRefs(p, f.Inum())
		for _, r := range refs2 {
			if r.Lbn < 0 {
				continue
			}
			tert := hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr))
			if r.Lbn < 5 && !tert {
				t.Fatalf("block %d not migrated", r.Lbn)
			}
			if r.Lbn >= 5 && tert {
				t.Fatalf("block %d migrated unexpectedly", r.Lbn)
			}
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("mixed-residency file corrupted")
		}
	})
	e.k.Stop()
}

func TestUpdateOfCachedSegmentGoesToLog(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(5, 8*lfs.BlockSize)
		f := put(t, p, hl, "/mut", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Overwrite one block: the change appends to the disk log; the
		// cached/tertiary copy remains undisturbed (§4).
		repl := pat(6, lfs.BlockSize)
		if _, err := f.WriteAt(p, repl, 3*lfs.BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		for _, r := range refs {
			if r.Lbn == 3 {
				if hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr)) {
					t.Fatal("updated block still points at tertiary copy")
				}
			}
		}
		want := append([]byte{}, data...)
		copy(want[3*lfs.BlockSize:], repl)
		hl.FS.DropFileBuffers(p, f.Inum())
		if got := get(t, p, f); !bytes.Equal(got, want) {
			t.Fatal("update lost or misplaced")
		}
	})
	e.k.Stop()
}

func TestEndOfMediumRestagesOnNextVolume(t *testing.T) {
	e := newHL(t, 64, 8, 3, 8)
	e.juke.SetActualSegments(0, 2) // volume 0 takes only 2 segments
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(7, 50*lfs.BlockSize) // needs ~4 staging segments
		f := put(t, p, hl, "/big", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		if !e.juke.VolumeFull(0) {
			t.Fatal("volume 0 not marked full")
		}
		if hl.Svc.Stats().EOMRetries == 0 {
			t.Fatal("no end-of-medium retry recorded")
		}
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if l.Staging {
				t.Fatalf("staging line %d survived CompleteMigration", l.Tag)
			}
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("data lost across end-of-medium re-staging")
		}
	})
	e.k.Stop()
}

func TestPermanentWriteErrorRetiresAndRestages(t *testing.T) {
	e := newHL(t, 64, 8, 3, 8)
	// The first tertiary segment (vol 0, seg 0) is permanently bad for
	// writes: the first copyout fails, the segment must be retired, and
	// the staged bytes must land on a fresh segment instead.
	e.juke.Fault = func(op string, vol, seg int) error {
		if op == "write" && vol == 0 && seg == 0 {
			return dev.ErrPermanentMedia
		}
		return nil
	}
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(9, 12*lfs.BlockSize) // fits one staging segment
		f := put(t, p, hl, "/fragile", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		if hl.RetiredSegments() != 1 {
			t.Fatalf("RetiredSegments = %d, want 1", hl.RetiredSegments())
		}
		if hl.FS.TsegUsage(0).Flags&lfs.SegNoStore == 0 {
			t.Fatal("bad segment 0 not marked no-store")
		}
		if hl.Svc.Stats().CopyoutFaults == 0 {
			t.Fatal("permanent write error not counted")
		}
		// The restage must be complete: no staging lines left, and the
		// data must survive a full eviction + demand fetch round trip.
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if l.Staging {
				t.Fatalf("staging line %d survived CompleteMigration", l.Tag)
			}
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("data lost across permanent-write restage")
		}
		// The retired segment must never be picked for staging again.
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		if hl.RetiredSegments() != 1 {
			t.Fatalf("retired count moved to %d: allocator reused a retired segment", hl.RetiredSegments())
		}
	})
	e.k.Stop()
}

func TestDelayedCopyouts(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		hl.DelayCopyouts = true
		data := pat(8, 40*lfs.BlockSize)
		f := put(t, p, hl, "/batch", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if hl.Svc.Stats().Copyouts != 0 {
			t.Fatal("copyouts ran despite DelayCopyouts")
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		if hl.Svc.Stats().Copyouts == 0 {
			t.Fatal("delayed copyouts never flushed")
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("data corrupted")
		}
	})
	e.k.Stop()
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	// Cache smaller than the working set: demand fetches must evict.
	e := newHL(t, 64, 4, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		var files []*lfs.File
		var datas [][]byte
		var inums []uint32
		for i := 0; i < 6; i++ {
			d := pat(byte(10+i), 12*lfs.BlockSize)
			f := put(t, p, hl, "/f"+string(rune('a'+i)), d)
			files = append(files, f)
			datas = append(datas, d)
			inums = append(inums, f.Inum())
		}
		if _, err := hl.MigrateFiles(p, inums, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Touch every file: more tertiary segments than cache lines.
		for round := 0; round < 2; round++ {
			for i, f := range files {
				hl.FS.DropFileBuffers(p, f.Inum())
				if got := get(t, p, f); !bytes.Equal(got, datas[i]) {
					t.Fatalf("file %d corrupted under cache pressure", i)
				}
			}
		}
		if hl.Cache.Stats().Evicts == 0 {
			t.Fatal("no evictions despite cache pressure")
		}
	})
	e.k.Stop()
}

func TestRemountRebuildsCacheDirectory(t *testing.T) {
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(64*segBlocks), bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 16, segBlocks*lfs.BlockSize, bus)
	cfg := Config{
		SegBlocks:   segBlocks,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{juke},
		CacheSegs:   8,
		MaxInodes:   256,
		BufferBytes: 1 << 20,
	}
	data := pat(9, 20*lfs.BlockSize)
	var inum uint32
	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		f := put(t, p, hl, "/persist", data)
		inum = f.Inum()
		if _, err := hl.MigrateFiles(p, []uint32{inum}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
	})
	// "Crash" and remount over the same media.
	k.RunProc(func(p *sim.Proc) {
		hl, err := New(p, cfg, false)
		if err != nil {
			t.Fatalf("remount: %v", err)
		}
		if hl.Cache.Len() == 0 {
			t.Fatal("cache directory not rebuilt from segment usage table")
		}
		f, err := hl.FS.OpenInum(p, inum)
		if err != nil {
			t.Fatal(err)
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("migrated data lost across remount")
		}
	})
	k.Stop()
}

func TestTertiaryExhaustion(t *testing.T) {
	e := newHL(t, 64, 8, 1, 2) // tiny tertiary: 2 segments total
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		f := put(t, p, hl, "/x", pat(1, 60*lfs.BlockSize))
		_, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false)
		if !errors.Is(err, ErrNoTertiarySpace) {
			t.Fatalf("want ErrNoTertiarySpace, got %v", err)
		}
	})
	e.k.Stop()
}

func TestWriteToTertiaryAddressRejected(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		bm := &blockMap{hl: e.hl}
		tert := e.hl.Amap.SegForIndex(0)
		err := bm.WriteBlocks(p, e.hl.Amap.BlockOf(tert, 0), make([]byte, lfs.BlockSize))
		if err == nil {
			t.Fatal("direct write to tertiary address accepted")
		}
	})
	e.k.Stop()
}

func TestPrefetchHook(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(11, 45*lfs.BlockSize) // several tertiary segments
		f := put(t, p, hl, "/seq", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		// Prefetch the next segment whenever one is fetched.
		hl.Svc.Prefetch = func(tag int) []int {
			if tag+1 < hl.FS.TsegCount() && hl.FS.TsegUsage(tag+1).Flags&lfs.SegDirty != 0 {
				return []int{tag + 1}
			}
			return nil
		}
		buf := make([]byte, lfs.BlockSize)
		if _, err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		p.Sleep(60e9) // let prefetches complete
		if hl.Cache.Len() < 2 {
			t.Fatalf("prefetch did not populate cache: %d lines", hl.Cache.Len())
		}
	})
	e.k.Stop()
}

func TestAddressMapDescribe(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	s := e.hl.Amap.Describe()
	if s == "" {
		t.Fatal("empty address map description")
	}
	var _ = addr.NilBlock // keep import
	_ = cache.LRU
}

func TestReplicatedSegmentsReadClosestCopy(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		hl.Replicas = 2
		data := pat(21, 14*lfs.BlockSize) // one staging segment
		f := put(t, p, hl, "/dual", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Find the primary and its replica; they must sit on different
		// volumes, and the replica must not be counted as live data.
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		primary, _ := hl.Amap.TertIndex(hl.Amap.SegOf(refs[0].Addr))
		alts := hl.Svc.AltCopies(primary)
		if len(alts) != 1 {
			t.Fatalf("got %d replicas, want 1", len(alts))
		}
		_, pv, _, _ := hl.Amap.Loc(hl.Amap.SegForIndex(primary))
		_, rv, _, _ := hl.Amap.Loc(hl.Amap.SegForIndex(alts[0]))
		if pv == rv {
			t.Fatalf("replica on same volume %d as primary", pv)
		}
		if su := hl.FS.TsegUsage(alts[0]); su.LiveBytes != 0 || su.Flags&lfs.SegNoStore == 0 {
			t.Fatalf("replica counted as live data: %+v", su)
		}
		// Force the jukebox drives onto the REPLICA's volume, eject the
		// cache, and read: the fetch must use the loaded replica volume
		// (no media swap).
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, hl.Amap.SegBlocks()*lfs.BlockSize)
		_, v, s, _ := hl.Amap.Loc(hl.Amap.SegForIndex(alts[0]))
		// Load the replica volume into both drives by reading from it.
		if err := e.juke.ReadSegment(p, v, s, buf); err != nil {
			t.Fatal(err)
		}
		e.juke.WriteDrive = -1 // no reservation: reads may use either drive
		for d := 0; d < 2; d++ {
			if e.juke.LoadedVolume(d) != v {
				// Force-load by reading again; the LRU drive gets it.
				if err := e.juke.ReadSegment(p, v, s, buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		swapsBefore := e.juke.Stats().Swaps
		rbuf := make([]byte, lfs.BlockSize)
		if _, err := f.ReadAt(p, rbuf, 0); err != nil {
			t.Fatal(err)
		}
		if got := e.juke.Stats().Swaps; got != swapsBefore {
			t.Fatalf("fetch swapped media (%d -> %d) despite a loaded replica", swapsBefore, got)
		}
		// Full content still correct when read via the replica.
		got := get(t, p, f)
		if !bytes.Equal(got, data) {
			t.Fatal("replica content differs from primary")
		}
	})
	e.k.Stop()
}

func TestReplicaEOMDoesNotFailMigration(t *testing.T) {
	e := newHL(t, 64, 8, 3, 8)
	e.juke.SetActualSegments(2, 0) // the replica volume is full from the start
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		hl.Replicas = 2
		data := pat(22, 10*lfs.BlockSize)
		f := put(t, p, hl, "/x", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatalf("replica EOM must not fail migration: %v", err)
		}
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		if got := get(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("data lost")
		}
	})
	e.k.Stop()
}

// TestMetadataSelfContainedOnVolume checks the §8.2 guidance: migrated
// metadata (indirect blocks, inodes) should land on the same volume as the
// data they describe, so a media failure never strands pointers across
// volumes. The staging mechanism achieves this by streaming a file's data,
// indirect blocks, and inode into consecutive staging segments.
func TestMetadataSelfContainedOnVolume(t *testing.T) {
	e := newHL(t, 96, 10, 4, 24)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		data := pat(13, 40*lfs.BlockSize) // fits comfortably on one volume
		f := put(t, p, hl, "/selfcontained", data)
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, true); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		vols := map[int]bool{}
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		for _, r := range refs {
			_, v, _, ok := hl.Amap.Loc(hl.Amap.SegOf(r.Addr))
			if !ok {
				t.Fatalf("block %d not tertiary", r.Lbn)
			}
			vols[v] = true
		}
		imapE := hl.FS.Imap(f.Inum())
		_, iv, _, ok := hl.Amap.Loc(hl.Amap.SegOf(imapE.Addr))
		if !ok {
			t.Fatal("inode not tertiary")
		}
		vols[iv] = true
		if len(vols) != 1 {
			t.Fatalf("file and its metadata span %d volumes, want 1 (self-contained)", len(vols))
		}
	})
	e.k.Stop()
}

func TestDeadZoneReadRejected(t *testing.T) {
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		bm := &blockMap{hl: e.hl}
		dead := addr.SegNo(e.hl.Amap.DiskSegs() + 100)
		if !e.hl.Amap.IsDeadZone(dead) {
			t.Fatal("test segment not in dead zone")
		}
		err := bm.ReadBlocks(p, e.hl.Amap.BlockOf(dead, 0), make([]byte, lfs.BlockSize))
		if err == nil {
			t.Fatal("dead-zone read accepted")
		}
	})
	e.k.Stop()
}

func TestBlockMapSpansDiskSegments(t *testing.T) {
	// Multi-segment disk reads (e.g. the checkpoint table region) must
	// pass through the block map in one call.
	e := newHL(t, 64, 8, 4, 16)
	e.run(t, func(p *sim.Proc) {
		bm := &blockMap{hl: e.hl}
		n := 3 * e.hl.Amap.SegBlocks() * lfs.BlockSize
		w := pat(77, n)
		if err := bm.WriteBlocks(p, e.hl.Amap.BlockOf(30, 0), w); err != nil {
			t.Fatal(err)
		}
		r := make([]byte, n)
		if err := bm.ReadBlocks(p, e.hl.Amap.BlockOf(30, 0), r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r) {
			t.Fatal("multi-segment block map round trip failed")
		}
	})
	e.k.Stop()
}
