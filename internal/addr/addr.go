// Package addr implements HighLight's uniform block address space (§6.3,
// Figure 4 of the paper).
//
// Block addresses are 32-bit numbers naming 4 KB units, viewed as a
// (segment number, offset) pair. Disks are assigned to the bottom of the
// address space starting at block 0; tertiary storage is assigned to the
// top, with the end of the first volume at the largest usable block number,
// the end of the second volume just below the beginning of the first, and
// so on — but blocks still increase within each volume. Between the two
// regions lies a dead zone whose addresses are invalid; adding storage
// claims part of the dead zone.
//
// One segment's worth of address space at the very top is unusable: the
// all-ones block number is the out-of-band "unassigned" value, and boot
// blocks shift segment bases, leaving the last addressable segment short.
package addr

import (
	"fmt"
	"strings"
)

// BlockNo is a 32-bit file system block address (4 KB units).
type BlockNo uint32

// NilBlock is the out-of-band "no block assigned" address (the paper's -1).
const NilBlock BlockNo = ^BlockNo(0)

// SegNo numbers segments across the whole address space.
type SegNo uint32

// NilSeg is an out-of-band segment number.
const NilSeg SegNo = ^SegNo(0)

// Geom describes one tertiary device: how many volumes it holds and how
// many segments fit on each volume (the maximum expected, §6.3).
type Geom struct {
	Vols       int
	SegsPerVol int
}

// Map is the address-space layout for one HighLight file system.
type Map struct {
	segBlocks int
	diskSegs  int
	devs      []Geom
	devBase   []SegNo // lowest segment number of each device's region
	top       SegNo   // first unusable segment (tertiary ends just below)
	tertSegs  int
	tertLow   SegNo
}

// New lays out diskSegs disk segments and the given tertiary devices in an
// address space of segBlocks-block segments. It panics if the regions
// collide (no dead zone left).
func New(segBlocks, diskSegs int, devs ...Geom) *Map {
	if segBlocks <= 0 || diskSegs <= 0 {
		panic("addr: segBlocks and diskSegs must be positive")
	}
	totalSegs := int64(1) << 32 / int64(segBlocks)
	m := &Map{
		segBlocks: segBlocks,
		diskSegs:  diskSegs,
		devs:      devs,
		top:       SegNo(totalSegs - 1), // last segment unusable
	}
	base := m.top
	for _, g := range devs {
		if g.Vols <= 0 || g.SegsPerVol <= 0 {
			panic("addr: tertiary geometry must be positive")
		}
		n := g.Vols * g.SegsPerVol
		m.tertSegs += n
		base -= SegNo(n)
		m.devBase = append(m.devBase, base)
	}
	m.tertLow = base
	if int64(diskSegs) >= int64(m.tertLow) {
		panic(fmt.Sprintf("addr: disk (%d segs) and tertiary (%d segs) regions collide", diskSegs, m.tertSegs))
	}
	return m
}

// SegBlocks reports the segment size in blocks.
func (m *Map) SegBlocks() int { return m.segBlocks }

// DiskSegs reports the number of disk segments.
func (m *Map) DiskSegs() int { return m.diskSegs }

// GrowDisk claims n segments of the dead zone for the disk region (§6.3:
// "the addition of tertiary or secondary storage is just a matter of
// claiming part of the dead zone by adjusting the boundaries"). It panics
// if the regions would collide.
func (m *Map) GrowDisk(n int) {
	if n <= 0 {
		panic("addr: GrowDisk with non-positive n")
	}
	if int64(m.diskSegs+n) >= int64(m.tertLow) {
		panic(fmt.Sprintf("addr: growing disk by %d segments collides with tertiary region", n))
	}
	m.diskSegs += n
}

// TertSegs reports the total number of tertiary segments.
func (m *Map) TertSegs() int { return m.tertSegs }

// Devices reports the tertiary device geometries.
func (m *Map) Devices() []Geom { return m.devs }

// BlockOf composes a block address from a segment number and offset.
func (m *Map) BlockOf(seg SegNo, off int) BlockNo {
	if off < 0 || off >= m.segBlocks {
		panic(fmt.Sprintf("addr: offset %d out of segment range [0,%d)", off, m.segBlocks))
	}
	return BlockNo(uint64(seg)*uint64(m.segBlocks) + uint64(off))
}

// SegOf extracts the segment number of a block address.
func (m *Map) SegOf(b BlockNo) SegNo { return SegNo(uint64(b) / uint64(m.segBlocks)) }

// OffOf extracts the within-segment offset of a block address.
func (m *Map) OffOf(b BlockNo) int { return int(uint64(b) % uint64(m.segBlocks)) }

// IsDiskSeg reports whether seg is a disk (secondary storage) segment.
func (m *Map) IsDiskSeg(seg SegNo) bool { return int64(seg) < int64(m.diskSegs) }

// IsTertiarySeg reports whether seg is a tertiary-storage segment.
func (m *Map) IsTertiarySeg(seg SegNo) bool { return seg >= m.tertLow && seg < m.top }

// IsDeadZone reports whether seg lies between the disk and tertiary
// regions (invalid to access, available for future expansion).
func (m *Map) IsDeadZone(seg SegNo) bool {
	return int64(seg) >= int64(m.diskSegs) && seg < m.tertLow
}

// Valid reports whether b addresses an existing disk or tertiary block.
func (m *Map) Valid(b BlockNo) bool {
	if b == NilBlock {
		return false
	}
	s := m.SegOf(b)
	return m.IsDiskSeg(s) || m.IsTertiarySeg(s)
}

// Loc resolves a tertiary segment number to (device, volume, segment
// within volume). ok is false for non-tertiary segments.
func (m *Map) Loc(seg SegNo) (device, vol, volseg int, ok bool) {
	if !m.IsTertiarySeg(seg) {
		return 0, 0, 0, false
	}
	for d, g := range m.devs {
		base := m.devBase[d]
		size := SegNo(g.Vols * g.SegsPerVol)
		if seg >= base && seg < base+size {
			rel := int(seg - base)
			// Volume 0 is at the TOP of the device region.
			volFromBottom := rel / g.SegsPerVol
			vol = g.Vols - 1 - volFromBottom
			volseg = rel % g.SegsPerVol
			return d, vol, volseg, true
		}
	}
	return 0, 0, 0, false
}

// SegForLoc composes the segment number of (device, volume, volseg).
func (m *Map) SegForLoc(device, vol, volseg int) SegNo {
	g := m.devs[device]
	if vol < 0 || vol >= g.Vols || volseg < 0 || volseg >= g.SegsPerVol {
		panic(fmt.Sprintf("addr: location (%d,%d,%d) out of range", device, vol, volseg))
	}
	volFromBottom := g.Vols - 1 - vol
	return m.devBase[device] + SegNo(volFromBottom*g.SegsPerVol+volseg)
}

// TertIndex maps a tertiary segment number to a dense index in
// [0, TertSegs), ordered by (device, volume, volseg) — the order in which
// the migrator consumes media. It is the row number in the tertiary
// segment summary file (tsegfile).
func (m *Map) TertIndex(seg SegNo) (int, bool) {
	d, v, s, ok := m.Loc(seg)
	if !ok {
		return 0, false
	}
	idx := 0
	for i := 0; i < d; i++ {
		idx += m.devs[i].Vols * m.devs[i].SegsPerVol
	}
	return idx + v*m.devs[d].SegsPerVol + s, true
}

// SegForIndex is the inverse of TertIndex.
func (m *Map) SegForIndex(idx int) SegNo {
	if idx < 0 || idx >= m.tertSegs {
		panic(fmt.Sprintf("addr: tertiary index %d out of range [0,%d)", idx, m.tertSegs))
	}
	for d, g := range m.devs {
		n := g.Vols * g.SegsPerVol
		if idx < n {
			return m.SegForLoc(d, idx/g.SegsPerVol, idx%g.SegsPerVol)
		}
		idx -= n
	}
	panic("addr: unreachable")
}

// Describe renders the address allocation as text — the content of the
// paper's Figure 4.
func (m *Map) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "block address space: %d-block segments, %d usable segments\n", m.segBlocks, int64(m.top))
	fmt.Fprintf(&b, "  disk:     segs [%d, %d)  blocks [0, %d)\n",
		0, m.diskSegs, uint64(m.diskSegs)*uint64(m.segBlocks))
	fmt.Fprintf(&b, "  dead zone: segs [%d, %d)  (invalid addresses, room for expansion)\n", m.diskSegs, uint64(m.tertLow))
	for d := len(m.devs) - 1; d >= 0; d-- {
		g := m.devs[d]
		fmt.Fprintf(&b, "  tertiary device %d: %d volumes x %d segs, segs [%d, %d)\n",
			d, g.Vols, g.SegsPerVol, uint64(m.devBase[d]), uint64(m.devBase[d])+uint64(g.Vols*g.SegsPerVol))
		for v := 0; v < g.Vols; v++ {
			lo := m.SegForLoc(d, v, 0)
			fmt.Fprintf(&b, "    vol %d: segs [%d, %d)\n", v, uint64(lo), uint64(lo)+uint64(g.SegsPerVol))
		}
	}
	fmt.Fprintf(&b, "  unusable: seg %d (out-of-band -1 block number; boot-block shift)\n", uint64(m.top))
	return b.String()
}
