package addr

import (
	"strings"
	"testing"
	"testing/quick"
)

func testMap() *Map {
	// 256-block (1 MB) segments, 100 disk segments, one jukebox with
	// 4 volumes of 40 segments, plus a small second device.
	return New(256, 100, Geom{Vols: 4, SegsPerVol: 40}, Geom{Vols: 2, SegsPerVol: 10})
}

func TestBlockSegRoundTrip(t *testing.T) {
	m := testMap()
	cases := []struct {
		seg SegNo
		off int
	}{
		{0, 0}, {0, 255}, {99, 128}, {m.tertLow, 0}, {m.top - 1, 255},
	}
	for _, c := range cases {
		b := m.BlockOf(c.seg, c.off)
		if m.SegOf(b) != c.seg || m.OffOf(b) != c.off {
			t.Errorf("round trip (%d,%d) -> %d -> (%d,%d)", c.seg, c.off, b, m.SegOf(b), m.OffOf(b))
		}
	}
}

func TestRegionClassification(t *testing.T) {
	m := testMap()
	if !m.IsDiskSeg(0) || !m.IsDiskSeg(99) {
		t.Error("disk segs misclassified")
	}
	if m.IsDiskSeg(100) {
		t.Error("seg 100 should not be disk")
	}
	if !m.IsDeadZone(100) || !m.IsDeadZone(m.tertLow-1) {
		t.Error("dead zone misclassified")
	}
	if !m.IsTertiarySeg(m.tertLow) || !m.IsTertiarySeg(m.top-1) {
		t.Error("tertiary segs misclassified")
	}
	if m.IsTertiarySeg(m.top) {
		t.Error("unusable top segment classified tertiary")
	}
	if m.Valid(NilBlock) {
		t.Error("NilBlock validated")
	}
	if !m.Valid(m.BlockOf(0, 0)) || !m.Valid(m.BlockOf(m.top-1, 0)) {
		t.Error("valid addresses rejected")
	}
	if m.Valid(m.BlockOf(200, 0)) {
		t.Error("dead zone address validated")
	}
}

func TestVolumeZeroEndsAtTop(t *testing.T) {
	// Figure 4: the end of the first volume is at the largest block
	// number; the end of the second volume is just below the beginning
	// of the first.
	m := New(256, 100, Geom{Vols: 3, SegsPerVol: 10})
	v0lo := m.SegForLoc(0, 0, 0)
	if v0lo+10 != m.top {
		t.Fatalf("vol 0 ends at seg %d, want top %d", uint64(v0lo+10), uint64(m.top))
	}
	v1lo := m.SegForLoc(0, 1, 0)
	if v1lo+10 != v0lo {
		t.Fatalf("vol 1 [%d,..) should end at vol 0 start %d", uint64(v1lo), uint64(v0lo))
	}
	// Blocks still increase within each volume.
	if m.SegForLoc(0, 1, 5) != v1lo+5 {
		t.Fatal("within-volume segments not increasing")
	}
}

func TestSecondDeviceBelowFirst(t *testing.T) {
	m := testMap()
	d0lo := m.devBase[0]
	d1lo := m.devBase[1]
	if d1lo+SegNo(2*10) != d0lo {
		t.Fatalf("device 1 region [%d,..) should end at device 0 base %d", uint64(d1lo), uint64(d0lo))
	}
}

func TestLocRoundTrip(t *testing.T) {
	m := testMap()
	for d, g := range m.Devices() {
		for v := 0; v < g.Vols; v++ {
			for s := 0; s < g.SegsPerVol; s++ {
				seg := m.SegForLoc(d, v, s)
				gd, gv, gs, ok := m.Loc(seg)
				if !ok || gd != d || gv != v || gs != s {
					t.Fatalf("Loc(SegForLoc(%d,%d,%d)) = %d,%d,%d,%v", d, v, s, gd, gv, gs, ok)
				}
			}
		}
	}
	if _, _, _, ok := m.Loc(50); ok {
		t.Error("disk segment resolved as tertiary")
	}
	if _, _, _, ok := m.Loc(m.tertLow - 1); ok {
		t.Error("dead zone resolved as tertiary")
	}
}

func TestTertIndexDenseAndBijective(t *testing.T) {
	m := testMap()
	seen := make(map[int]bool)
	total := m.TertSegs()
	for d, g := range m.Devices() {
		for v := 0; v < g.Vols; v++ {
			for s := 0; s < g.SegsPerVol; s++ {
				seg := m.SegForLoc(d, v, s)
				idx, ok := m.TertIndex(seg)
				if !ok {
					t.Fatalf("TertIndex failed for %d,%d,%d", d, v, s)
				}
				if idx < 0 || idx >= total || seen[idx] {
					t.Fatalf("index %d out of range or duplicated", idx)
				}
				seen[idx] = true
				if m.SegForIndex(idx) != seg {
					t.Fatalf("SegForIndex(%d) != seg %d", idx, seg)
				}
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("covered %d indices, want %d", len(seen), total)
	}
}

func TestTertIndexOrderFollowsConsumptionOrder(t *testing.T) {
	// The migrator consumes device 0 volume 0 first; its tsegfile rows
	// must come first.
	m := testMap()
	if idx, _ := m.TertIndex(m.SegForLoc(0, 0, 0)); idx != 0 {
		t.Fatalf("first consumed segment has index %d, want 0", idx)
	}
	if idx, _ := m.TertIndex(m.SegForLoc(0, 0, 1)); idx != 1 {
		t.Fatalf("second segment of vol 0 has index %d, want 1", idx)
	}
	if idx, _ := m.TertIndex(m.SegForLoc(0, 1, 0)); idx != 40 {
		t.Fatalf("vol 1 starts at index %d, want 40", idx)
	}
	if idx, _ := m.TertIndex(m.SegForLoc(1, 0, 0)); idx != 160 {
		t.Fatalf("device 1 starts at index %d, want 160", idx)
	}
}

func TestPropertyBlockAddressRoundTrip(t *testing.T) {
	m := testMap()
	f := func(raw uint32) bool {
		b := BlockNo(raw)
		if b == NilBlock {
			return true
		}
		seg, off := m.SegOf(b), m.OffOf(b)
		return m.BlockOf(seg, off) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRegionsPartitionSpace(t *testing.T) {
	m := testMap()
	f := func(raw uint32) bool {
		seg := m.SegOf(BlockNo(raw))
		n := 0
		if m.IsDiskSeg(seg) {
			n++
		}
		if m.IsDeadZone(seg) {
			n++
		}
		if m.IsTertiarySeg(seg) {
			n++
		}
		if seg >= m.top { // unusable top region
			return n == 0
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on region collision")
		}
	}()
	// 16-block segments: 2^28 total segments; ask for everything.
	New(16, 1<<28-100, Geom{Vols: 1, SegsPerVol: 200})
}

func TestDescribeMentionsAllRegions(t *testing.T) {
	m := testMap()
	s := m.Describe()
	for _, want := range []string{"disk:", "dead zone", "tertiary device 0", "tertiary device 1", "vol 0", "unusable"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q:\n%s", want, s)
		}
	}
}

func TestGrowDiskClaimsDeadZone(t *testing.T) {
	m := New(256, 100, Geom{Vols: 2, SegsPerVol: 10})
	if !m.IsDeadZone(150) {
		t.Fatal("seg 150 should start in the dead zone")
	}
	m.GrowDisk(100)
	if m.DiskSegs() != 200 {
		t.Fatalf("DiskSegs = %d after growth", m.DiskSegs())
	}
	if !m.IsDiskSeg(150) || m.IsDeadZone(150) {
		t.Fatal("seg 150 not reclassified as disk after growth")
	}
	if m.IsDiskSeg(200) {
		t.Fatal("seg 200 wrongly classified disk")
	}
	// Tertiary region untouched.
	if _, ok := m.TertIndex(m.SegForLoc(0, 0, 0)); !ok {
		t.Fatal("tertiary mapping broken by growth")
	}
}

func TestGrowDiskCollisionPanics(t *testing.T) {
	m := New(16, 100, Geom{Vols: 1, SegsPerVol: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on collision")
		}
	}()
	m.GrowDisk(1 << 28) // beyond the tertiary base
}
