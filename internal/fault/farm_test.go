package fault

import (
	"bytes"
	"testing"

	"repro/internal/dev"
	"repro/internal/sim"
	"repro/internal/stripe"
)

// TestDegradedReadThroughFaultedArm injects a per-spindle fault plan on
// one arm of a RAID-5 farm and asserts reads still return correct data:
// the faulted arm's extents are reconstructed from the surviving data
// units and parity instead of failing the request.
func TestDegradedReadThroughFaultedArm(t *testing.T) {
	k := sim.NewKernel()
	var disks []dev.BlockDev
	for i := 0; i < 4; i++ {
		disks = append(disks, dev.NewDisk(k, dev.RZ57, 512, nil))
	}
	farm := stripe.MustNewInterleave(4, true, disks...)

	// Every read of arm 1 is refused permanently: a dead spindle that was
	// never administratively marked failed.
	pl := NewPlan(Config{Seed: 7, PermanentReadRate: 0.999999})
	if !pl.InstallFarmComponent("arm[1]", farm, 1) {
		t.Fatal("InstallFarmComponent refused a *dev.Disk component")
	}

	const nb = 96 // spans many stripe rows, all arms
	want := make([]byte, nb*dev.BlockSize)
	for i := range want {
		want[i] = byte(i*31 + 7)
	}
	k.RunProc(func(p *sim.Proc) {
		if err := farm.WriteBlocks(p, 0, want); err != nil {
			t.Fatalf("populate: %v", err)
		}
		got := make([]byte, len(want))
		if err := farm.ReadBlocks(p, 0, got); err != nil {
			t.Fatalf("degraded read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("degraded read returned wrong data")
		}
	})
	if c := pl.DeviceCounts("arm[1]"); c.Permanent == 0 {
		t.Fatalf("expected injected read faults on arm 1, got %+v", c)
	}
	k.Stop()
}

// TestFarmComponentTargeting checks the helpers see through both farm
// layouts and refuse out-of-range or non-disk components.
func TestFarmComponentTargeting(t *testing.T) {
	k := sim.NewKernel()
	d0 := dev.NewDisk(k, dev.RZ57, 256, nil)
	d1 := dev.NewDisk(k, dev.RZ57, 256, nil)
	concat := stripe.MustNew(d0, d1)
	ileave := stripe.MustNewInterleave(4, false, d0, d1)

	pl := NewPlan(Config{Seed: 1})
	if n := pl.InstallFarm("concat", concat); n != 2 {
		t.Fatalf("InstallFarm(concat) hooked %d spindles, want 2", n)
	}
	if n := pl.InstallFarm("ileave", ileave); n != 2 {
		t.Fatalf("InstallFarm(ileave) hooked %d spindles, want 2", n)
	}
	if pl.InstallFarmComponent("oob", concat, 5) {
		t.Fatal("out-of-range component was hooked")
	}
	k.Stop()
}
