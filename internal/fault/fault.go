// Package fault provides deterministic, seeded fault injection for the
// simulated storage devices. A Plan compiles per-device fault schedules
// into the existing Fault hooks on dev.Disk and jukebox.Jukebox, so no
// device code changes to run a chaos experiment — and the same seed
// always produces the same injected-fault sequence, because the sim
// kernel dispatches operations in a deterministic order.
//
// The fault model covers the failure classes a hierarchical storage
// manager meets in the field (the paper's §6.7 machinery assumed none of
// them):
//
//   - transient media errors: an operation fails once or in a short
//     burst, then succeeds when retried (dust, marginal signal);
//   - permanent media errors: a (volume, segment) region goes bad and
//     every later operation on it fails (media defect, tape crease);
//   - volume-load failures: the robot fails to seat a volume in a drive
//     (retryable);
//   - drive outages: a drive is stuck or offline for a window of virtual
//     time, forcing failover to the remaining drives.
//
// Injected errors wrap dev.ErrTransientMedia or dev.ErrPermanentMedia so
// the recovery layer in internal/tertiary can classify them.
package fault

import (
	"fmt"

	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/sim"
	"repro/internal/stripe"
)

// Config sets the fault rates of a Plan. All rates are per-operation
// probabilities in [0, 1).
type Config struct {
	// Seed feeds every injector RNG; the same seed and the same
	// simulated operation sequence reproduce the same faults.
	Seed uint64

	// TransientReadRate / TransientWriteRate inject retryable media
	// errors on reads and writes.
	TransientReadRate  float64
	TransientWriteRate float64

	// MaxBurst bounds how many consecutive attempts one transient fault
	// fails (an error burst). Each injected transient fault fails between
	// 1 and MaxBurst attempts of the same operation before clearing.
	// Zero means 1 (single failure). Keep MaxBurst below the recovery
	// layer's retry budget or transient faults become unrecoverable.
	MaxBurst int

	// PermanentReadRate / PermanentWriteRate mark the targeted
	// (volume, segment) permanently bad. A permanent write fault is
	// recovered by retiring the segment and restaging its contents; a
	// permanent read fault loses the data (graceful degradation is the
	// best possible outcome).
	PermanentReadRate  float64
	PermanentWriteRate float64

	// LoadFailRate injects transient volume-load failures (jukeboxes
	// only; the "load" hook op).
	LoadFailRate float64
}

// Counts tallies the faults one injector produced, by class.
type Counts struct {
	Transient int64 // transient failures injected (burst repeats included)
	Permanent int64 // operations refused on permanently bad segments
	LoadFails int64 // volume-load failures injected
	BadSegs   int64 // distinct (volume, segment) regions gone permanently bad
}

// Total reports all injected failures.
func (c Counts) Total() int64 { return c.Transient + c.Permanent + c.LoadFails }

// target identifies a fault-addressable region: (vol, seg) on a jukebox,
// (-1, block-group) on a disk.
type target struct {
	vol int
	seg int64
}

type burstKey struct {
	op string
	t  target
}

// injector is the per-device fault state machine.
type injector struct {
	name   string
	cfg    Config
	rng    *sim.RNG
	burst  map[burstKey]int // remaining failures of an active burst
	perm   map[target]bool  // permanently bad regions
	counts Counts
}

func newInjector(name string, cfg Config, salt uint64) *injector {
	return &injector{
		name:  name,
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed ^ salt),
		burst: make(map[burstKey]int),
		perm:  make(map[target]bool),
	}
}

func (in *injector) maxBurst() int {
	if in.cfg.MaxBurst < 1 {
		return 1
	}
	return in.cfg.MaxBurst
}

// decide is the per-operation fault oracle.
func (in *injector) decide(op string, t target) error {
	if in.perm[t] {
		in.counts.Permanent++
		return fmt.Errorf("fault: %s: %s vol %d seg %d: %w", in.name, op, t.vol, t.seg, dev.ErrPermanentMedia)
	}
	bk := burstKey{op, t}
	if n := in.burst[bk]; n > 0 {
		in.burst[bk] = n - 1
		in.counts.Transient++
		return fmt.Errorf("fault: %s: %s vol %d seg %d (burst): %w", in.name, op, t.vol, t.seg, dev.ErrTransientMedia)
	}
	var transRate, permRate float64
	switch op {
	case "read":
		transRate, permRate = in.cfg.TransientReadRate, in.cfg.PermanentReadRate
	case "write":
		transRate, permRate = in.cfg.TransientWriteRate, in.cfg.PermanentWriteRate
	case "load":
		if in.cfg.LoadFailRate > 0 && in.rng.Float64() < in.cfg.LoadFailRate {
			in.counts.LoadFails++
			return fmt.Errorf("fault: %s: load of vol %d failed: %w", in.name, t.vol, dev.ErrTransientMedia)
		}
		return nil
	default:
		return nil
	}
	if permRate > 0 && in.rng.Float64() < permRate {
		in.perm[t] = true
		in.counts.Permanent++
		in.counts.BadSegs++
		return fmt.Errorf("fault: %s: %s vol %d seg %d: %w", in.name, op, t.vol, t.seg, dev.ErrPermanentMedia)
	}
	if transRate > 0 && in.rng.Float64() < transRate {
		// This attempt fails; 0..MaxBurst-1 further attempts fail too.
		in.burst[bk] = in.rng.Intn(in.maxBurst())
		in.counts.Transient++
		return fmt.Errorf("fault: %s: %s vol %d seg %d: %w", in.name, op, t.vol, t.seg, dev.ErrTransientMedia)
	}
	return nil
}

// Outage keeps a jukebox drive offline for a window of virtual time.
type Outage struct {
	Drive      int
	Start, End sim.Time
}

type scheduledOutage struct {
	j *jukebox.Jukebox
	o Outage
}

// LibraryOutage takes a whole changer out of service for a window of
// virtual time — power loss, robotics jam, or a severed link to a remote
// library. End at or before Start means the outage is permanent: the
// library goes down and never comes back (the repair daemon's job is to
// re-replicate off the survivors).
type LibraryOutage struct {
	Start, End sim.Time
}

type scheduledLibOutage struct {
	l *jukebox.Library
	o LibraryOutage
}

// Plan is a compiled fault schedule over a set of devices.
type Plan struct {
	cfg        Config
	salt       uint64
	injectors  map[string]*injector
	order      []string // deterministic Stats/report order
	outages    []scheduledOutage
	libOutages []scheduledLibOutage
	started    bool
}

// NewPlan returns an empty plan with the given configuration.
func NewPlan(cfg Config) *Plan {
	return &Plan{cfg: cfg, injectors: make(map[string]*injector)}
}

func (pl *Plan) injector(name string) *injector {
	in, ok := pl.injectors[name]
	if !ok {
		pl.salt++
		in = newInjector(name, pl.cfg, pl.salt*0x9e3779b97f4a7c15)
		pl.injectors[name] = in
		pl.order = append(pl.order, name)
	}
	return in
}

// InstallJukebox compiles the plan into j's Fault hook under the given
// device name (used in Stats and reports).
func (pl *Plan) InstallJukebox(name string, j *jukebox.Jukebox) {
	in := pl.injector(name)
	j.Fault = func(op string, vol, seg int) error {
		return in.decide(op, target{vol: vol, seg: int64(seg)})
	}
}

// InstallDisk compiles the plan into d's Fault hook. Disk faults address
// block regions (one fault target per 256-block group), so a permanent
// fault takes out a region the size of a typical request, not the whole
// device.
func (pl *Plan) InstallDisk(name string, d *dev.Disk) {
	in := pl.injector(name)
	d.Fault = func(op string, blk int64) error {
		return in.decide(op, target{vol: -1, seg: blk >> 8})
	}
}

// InstallFarmComponent targets one spindle of a disk farm: component i of
// f gets its own injector under the given name. This is how a chaos plan
// takes out a single arm of a striped (RAID-5) farm while its siblings
// stay healthy — the parity read path must then serve degraded-mode reads
// through the faulted arm. Returns false when the component is not a
// simulated disk (nothing to hook).
func (pl *Plan) InstallFarmComponent(name string, f stripe.Farm, i int) bool {
	d, ok := farmDisk(f, i)
	if !ok {
		return false
	}
	pl.InstallDisk(name, d)
	return true
}

// InstallFarm installs one injector per *dev.Disk component of f, named
// prefix[i], and reports how many spindles were hooked.
func (pl *Plan) InstallFarm(prefix string, f stripe.Farm) int {
	n := 0
	for i := 0; i < f.Components(); i++ {
		if pl.InstallFarmComponent(fmt.Sprintf("%s[%d]", prefix, i), f, i) {
			n++
		}
	}
	return n
}

// farmDisk resolves component i of a farm to its simulated disk, seeing
// through both farm layouts (Concat exposes a start offset alongside the
// device; Interleave does not).
func farmDisk(f stripe.Farm, i int) (*dev.Disk, bool) {
	if i < 0 || i >= f.Components() {
		return nil, false
	}
	var bd dev.BlockDev
	switch farm := f.(type) {
	case *stripe.Interleave:
		bd = farm.Component(i)
	case *stripe.Concat:
		bd, _ = farm.Component(i)
	default:
		return nil, false
	}
	d, ok := bd.(*dev.Disk)
	return d, ok
}

// AddOutage schedules a drive outage on j. Call before Start.
func (pl *Plan) AddOutage(j *jukebox.Jukebox, o Outage) {
	if pl.started {
		panic("fault: AddOutage after Start")
	}
	pl.outages = append(pl.outages, scheduledOutage{j, o})
}

// AddLibraryOutage schedules a whole-changer outage on l. Call before
// Start. An End at or before Start makes the outage permanent.
func (pl *Plan) AddLibraryOutage(l *jukebox.Library, o LibraryOutage) {
	if pl.started {
		panic("fault: AddLibraryOutage after Start")
	}
	pl.libOutages = append(pl.libOutages, scheduledLibOutage{l, o})
}

// Start spawns the outage-driver daemon that flips drive and library
// health at the scheduled virtual times. A plan with no outages needs no
// Start.
func (pl *Plan) Start(k *sim.Kernel) {
	pl.started = true
	if len(pl.outages) == 0 && len(pl.libOutages) == 0 {
		return
	}
	type edge struct {
		at    sim.Time
		apply func()
	}
	var edges []edge
	for _, so := range pl.outages {
		so := so
		edges = append(edges, edge{so.o.Start, func() { so.j.SetDriveOffline(so.o.Drive, true) }})
		edges = append(edges, edge{so.o.End, func() { so.j.SetDriveOffline(so.o.Drive, false) }})
	}
	for _, lo := range pl.libOutages {
		lo := lo
		edges = append(edges, edge{lo.o.Start, func() { lo.l.SetDown(true) }})
		if lo.o.End > lo.o.Start {
			edges = append(edges, edge{lo.o.End, func() { lo.l.SetDown(false) }})
		}
	}
	// Stable order: by time, ties broken by insertion order (offline
	// edges were appended before their matching online edges).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].at < edges[j-1].at; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	k.GoDaemon("fault-outages", func(p *sim.Proc) {
		for _, e := range edges {
			if d := e.at - p.Now(); d > 0 {
				p.Sleep(d)
			}
			e.apply()
		}
	})
}

// DeviceCounts reports the injected-fault tally for one installed device.
func (pl *Plan) DeviceCounts(name string) Counts {
	if in, ok := pl.injectors[name]; ok {
		return in.counts
	}
	return Counts{}
}

// Devices lists installed device names in installation order.
func (pl *Plan) Devices() []string { return append([]string(nil), pl.order...) }

// TotalCounts sums the tallies across every installed device.
func (pl *Plan) TotalCounts() Counts {
	var c Counts
	for _, in := range pl.injectors {
		c.Transient += in.counts.Transient
		c.Permanent += in.counts.Permanent
		c.LoadFails += in.counts.LoadFails
		c.BadSegs += in.counts.BadSegs
	}
	return c
}
