package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/sim"
)

// replay records the error sequence a fault plan produces for a fixed
// operation schedule.
func replay(seed uint64) []string {
	pl := NewPlan(Config{
		Seed:               seed,
		TransientReadRate:  0.2,
		TransientWriteRate: 0.2,
		PermanentReadRate:  0.02,
		PermanentWriteRate: 0.02,
		LoadFailRate:       0.1,
		MaxBurst:           3,
	})
	in := pl.injector("dev")
	var out []string
	for i := 0; i < 400; i++ {
		op := "read"
		if i%3 == 1 {
			op = "write"
		} else if i%17 == 2 {
			op = "load"
		}
		err := in.decide(op, target{vol: i % 4, seg: int64(i % 16)})
		if err == nil {
			out = append(out, "ok")
		} else {
			out = append(out, err.Error())
		}
	}
	return out
}

func TestPlanDeterministic(t *testing.T) {
	a, b := replay(42), replay(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
	c := replay(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestTransientBurstBounded(t *testing.T) {
	pl := NewPlan(Config{Seed: 7, TransientReadRate: 1.0, MaxBurst: 4})
	in := pl.injector("dev")
	tgt := target{vol: 0, seg: 5}
	// With rate 1.0 every fresh draw faults, but an individual burst must
	// clear within MaxBurst attempts; confirm each error is transient.
	for i := 0; i < 20; i++ {
		err := in.decide("read", tgt)
		if !errors.Is(err, dev.ErrTransientMedia) {
			t.Fatalf("attempt %d: got %v, want transient", i, err)
		}
	}
	if in.counts.Transient != 20 {
		t.Fatalf("transient count = %d, want 20", in.counts.Transient)
	}
	// Writes to a different op key are independent bursts.
	if err := in.decide("write", tgt); err != nil && !errors.Is(err, dev.ErrTransientMedia) {
		t.Fatalf("write fault has wrong class: %v", err)
	}
}

func TestBurstClearsWithinMaxBurst(t *testing.T) {
	// Force one burst, then drop the rate to zero: the burst must clear
	// after at most MaxBurst failures.
	pl := NewPlan(Config{Seed: 9, TransientReadRate: 1.0, MaxBurst: 3})
	in := pl.injector("dev")
	tgt := target{vol: 1, seg: 2}
	if err := in.decide("read", tgt); !errors.Is(err, dev.ErrTransientMedia) {
		t.Fatalf("first attempt: %v", err)
	}
	in.cfg.TransientReadRate = 0
	fails := 1
	for i := 0; i < 10; i++ {
		if err := in.decide("read", tgt); err != nil {
			fails++
		} else {
			break
		}
	}
	if fails > 3 {
		t.Fatalf("burst lasted %d failures, MaxBurst is 3", fails)
	}
}

func TestPermanentFaultSticks(t *testing.T) {
	pl := NewPlan(Config{Seed: 1, PermanentWriteRate: 1.0})
	in := pl.injector("juke")
	tgt := target{vol: 2, seg: 7}
	if err := in.decide("write", tgt); !errors.Is(err, dev.ErrPermanentMedia) {
		t.Fatalf("first write: %v, want permanent", err)
	}
	// Reads of the same region now fail permanently too, even with a zero
	// read rate — the media is bad, not the operation.
	in.cfg.PermanentWriteRate = 0
	if err := in.decide("read", tgt); !errors.Is(err, dev.ErrPermanentMedia) {
		t.Fatalf("read of bad region: %v, want permanent", err)
	}
	if err := in.decide("write", target{vol: 2, seg: 8}); err != nil {
		t.Fatalf("neighbouring segment affected: %v", err)
	}
	if in.counts.BadSegs != 1 {
		t.Fatalf("BadSegs = %d, want 1", in.counts.BadSegs)
	}
	if in.counts.Permanent != 2 {
		t.Fatalf("Permanent = %d, want 2", in.counts.Permanent)
	}
}

func TestLoadFaults(t *testing.T) {
	pl := NewPlan(Config{Seed: 3, LoadFailRate: 1.0})
	in := pl.injector("juke")
	err := in.decide("load", target{vol: 1, seg: -1})
	if !errors.Is(err, dev.ErrTransientMedia) {
		t.Fatalf("load fault: %v, want transient", err)
	}
	if in.counts.LoadFails != 1 {
		t.Fatal("load fault not counted")
	}
}

func TestInstallHooksAndCounts(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlan(Config{Seed: 11, TransientReadRate: 1.0, MaxBurst: 1})
	d := dev.NewDisk(k, dev.RZ57, 1024, nil)
	j := jukebox.MustNew(k, jukebox.MO6300, 2, 2, 8, 16*dev.BlockSize, nil)
	pl.InstallDisk("disk0", d)
	pl.InstallJukebox("juke0", j)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, dev.BlockSize)
		if err := d.ReadBlocks(p, 0, buf); !errors.Is(err, dev.ErrTransientMedia) {
			t.Fatalf("disk read: %v", err)
		}
		sbuf := make([]byte, 16*dev.BlockSize)
		if err := j.ReadSegment(p, 0, 0, sbuf); !errors.Is(err, dev.ErrTransientMedia) {
			t.Fatalf("jukebox read: %v", err)
		}
	})
	if got := pl.DeviceCounts("disk0").Transient; got != 1 {
		t.Fatalf("disk0 transient = %d, want 1", got)
	}
	if got := pl.DeviceCounts("juke0").Transient; got != 1 {
		t.Fatalf("juke0 transient = %d, want 1", got)
	}
	if tot := pl.TotalCounts().Total(); tot != 2 {
		t.Fatalf("total = %d, want 2", tot)
	}
	if devs := pl.Devices(); len(devs) != 2 || devs[0] != "disk0" || devs[1] != "juke0" {
		t.Fatalf("devices = %v", devs)
	}
	if ds := d.Stats(); ds.ReadFaults != 1 {
		t.Fatalf("disk ReadFaults = %d, want 1", ds.ReadFaults)
	}
	if js := j.Stats(); js.ReadFaults != 1 {
		t.Fatalf("jukebox ReadFaults = %d, want 1", js.ReadFaults)
	}
	k.Stop()
}

func TestOutageWindow(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlan(Config{Seed: 5})
	j := jukebox.MustNew(k, jukebox.MO6300, 2, 2, 8, 16*dev.BlockSize, nil)
	pl.AddOutage(j, Outage{Drive: 1, Start: 10 * sim.Time(time.Second), End: 30 * sim.Time(time.Second)})
	pl.Start(k)
	k.RunProc(func(p *sim.Proc) {
		if j.DriveOffline(1) {
			t.Fatal("drive offline before window")
		}
		p.Sleep(15 * sim.Time(time.Second))
		if !j.DriveOffline(1) {
			t.Fatal("drive not offline inside window")
		}
		if j.DriveOffline(0) {
			t.Fatal("wrong drive taken offline")
		}
		p.Sleep(20 * sim.Time(time.Second))
		if j.DriveOffline(1) {
			t.Fatal("drive still offline after window")
		}
	})
	k.Stop()
}
