package svc_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/fsck"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/obs/attr"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/wl"
)

const soakSeed = 20260808

// runOverloadOutageSoak is the combined chaos scenario of the overload
// work: a bursty multi-client flood through the admission-controlled front
// end while one library suffers a whole-changer outage and the other loses
// both drives for a window. It returns a digest of everything externally
// observable, so the caller can assert two runs are bit-identical.
//
// Invariants checked inside:
//   - zero data loss: every file reads back byte-exact after the storm;
//   - the breakers tripped during the double-failure window and recovered
//     after it (trip AND restore audited);
//   - overload was real (sheds happened) and every shed was the explicit
//     ErrOverload — no request stalled silently (RunClients returning at
//     all proves every Submit reached a terminal state);
//   - the volume checker and the replica catalog come back clean.
func runOverloadOutageSoak(t *testing.T, seed uint64) string {
	t.Helper()
	k := sim.NewKernel()
	var digest string
	k.RunProc(func(p *sim.Proc) {
		disk := dev.NewDisk(k, dev.RZ57, 512*64, nil)
		jb0 := jukebox.MustNew(k, jukebox.MO6300, 2, 6, 32, 64*lfs.BlockSize, nil)
		jb1 := jukebox.MustNew(k, jukebox.MO6300, 2, 6, 32, 64*lfs.BlockSize, nil)
		hl, err := core.New(p, core.Config{
			SegBlocks:   64,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{jb0, jb1},
			CacheSegs:   6,
			MaxInodes:   256,
			Replicas:    2,
			BufferBytes: 64 * lfs.BlockSize,
			RepairEvery: 10 * sim.Time(time.Second),
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		fe := svc.New(hl, svc.Config{
			Workers: 2, ReservedInteractive: 1,
			InteractiveQueue: 4, BackgroundQueue: 2,
			BrownoutHi: 3, BrownoutLo: 1,
			Breaker: svc.BreakerConfig{Threshold: 3, Cooldown: 2 * sim.Time(time.Second)},
		})

		// A small tree of files, fully migrated and replicated before the
		// storm, with their pre-storm hashes recorded.
		rng := sim.NewRNG(seed)
		var paths []string
		var inums []uint32
		want := map[string][32]byte{}
		for i := 0; i < 24; i++ {
			path := fmt.Sprintf("/f%02d", i)
			f, err := hl.FS.Create(p, path)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, (20+rng.Intn(13))*lfs.BlockSize)
			for j := range data {
				data[j] = byte(int(seed) + i*31 + j)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			want[path] = sha256.Sum256(data)
			paths = append(paths, path)
			inums = append(inums, f.Inum())
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, inums, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		ejectAll(t, hl)
		base := p.Now() // setup burns virtual time; schedule faults after it

		// The fault schedule, anchored to the post-setup clock: library 0
		// down for most of the storm, and — inside that window — library 1
		// loses both drives for twenty seconds, so fetch attempts against
		// it fail with infrastructure errors and trip its breaker; when the
		// drives return, the half-open probe restores it while library 0 is
		// still dark.
		pl := fault.NewPlan(fault.Config{Seed: seed})
		pl.AddLibraryOutage(hl.Libraries()[0], fault.LibraryOutage{
			Start: base + 5*sim.Time(time.Second), End: base + 70*sim.Time(time.Second),
		})
		for d := 0; d < 2; d++ {
			pl.AddOutage(jb1, fault.Outage{
				Drive: d, Start: base + 10*sim.Time(time.Second), End: base + 30*sim.Time(time.Second),
			})
		}
		pl.Start(k)

		cs, err := wl.RunClients(p, fe, hl, paths, wl.ClientSpec{
			Clients:           8,
			RequestsPerClient: 60,
			Arrival:           wl.ArrivalBursty,
			MeanGap:           300 * sim.Time(time.Millisecond),
			BurstLen:          8,
			Deadline:          4 * sim.Time(time.Second),
			ReadBlocks:        2,
			Seed:              seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if cs.Completed == 0 {
			t.Fatalf("no request completed: %+v", cs)
		}
		if cs.Shed == 0 {
			t.Fatalf("overload never shed — the flood was not a flood: %+v", cs)
		}
		if got := cs.Completed + cs.Shed + cs.Expired + cs.Failed; got != cs.Submitted-cs.Retries {
			t.Fatalf("request accounting leak: %+v", cs)
		}

		v := auditVerdicts(hl)
		if v[attr.VerdictTripped] == 0 {
			t.Fatalf("no breaker tripped through the double-failure window: %v", v)
		}
		if v[attr.VerdictRestored] == 0 {
			t.Fatalf("no breaker recovered after the window: %v", v)
		}

		// Let the storm fully pass, then let the repair daemon restore
		// replication before the final audit.
		if until := base + 75*sim.Time(time.Second) - p.Now(); until > 0 {
			p.Sleep(until)
		}
		for i := 0; len(hl.ReplicationDeficits()) > 0; i++ {
			if i >= 30 {
				t.Fatalf("replication never recovered: %+v", hl.ReplicationDeficits())
			}
			p.Sleep(5 * sim.Time(time.Second))
		}
		rep, err := fsck.Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("fsck after soak:\n%s", rep.Summary())
		}

		// Zero loss: every file byte-exact after outages, sheds, expiries,
		// brownouts, and repair.
		h := sha256.New()
		for _, path := range paths {
			f, err := hl.FS.Open(p, path)
			if err != nil {
				t.Fatal(err)
			}
			size, err := f.Size(p)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, size)
			if _, err := f.ReadAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			if sha256.Sum256(data) != want[path] {
				t.Fatalf("%s corrupted by the soak", path)
			}
			fmt.Fprintf(h, "%s %x\n", path, sha256.Sum256(data))
		}
		// Property check over every retained trace of the storm: even
		// requests that shed, expired, were canceled by breaker trips, or
		// unwound mid-fetch must have sealed with all stages closed and
		// their critical-path breakdown summing exactly to their latency.
		checked := 0
		validateAll := func(trs []*reqtrace.Trace) {
			for _, tr := range trs {
				if !tr.Done {
					t.Fatalf("request %d: trace left open after the soak", tr.ID)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("soak trace invariant: %v", err)
				}
				checked++
			}
		}
		validateAll(fe.Tracer.Recent())
		for _, c := range fe.Tracer.Classes() {
			validateAll(fe.Tracer.Slowest(c, 1<<30))
		}
		if checked == 0 {
			t.Fatal("soak retained no traces to check")
		}
		started, sealed, stages := fe.Tracer.Counts()
		if started != sealed {
			t.Fatalf("trace leak: %d started, %d sealed", started, sealed)
		}

		st := fe.Stats()
		fmt.Fprintf(h, "clients %+v\n", cs)
		fmt.Fprintf(h, "svc %d %d %d %d %d %d\n",
			st.Admitted, st.Shed, st.ExpiredInQueue, st.Completed, st.Failed, st.DeadlineMisses)
		fmt.Fprintf(h, "verdicts shed=%d trip=%d probe=%d restore=%d brownout=%d\n",
			v[attr.VerdictShed], v[attr.VerdictTripped], v[attr.VerdictProbed],
			v[attr.VerdictRestored], v[attr.VerdictBrownout])
		fmt.Fprintf(h, "traces %d %d %d checked %d\n", started, sealed, stages, checked)
		fmt.Fprintf(h, "audit %d now %d\n", hl.Audit.Total(), p.Now())
		digest = hex.EncodeToString(h.Sum(nil))
	})
	k.Stop()
	return digest
}

// TestOverloadLibraryOutageSoak runs the combined overload + outage chaos
// scenario twice and asserts the runs are observationally identical — the
// determinism guarantee the whole simulator rests on holds under admission
// control, cancellation, breaker trips, and fault injection all at once.
func TestOverloadLibraryOutageSoak(t *testing.T) {
	d1 := runOverloadOutageSoak(t, soakSeed)
	d2 := runOverloadOutageSoak(t, soakSeed)
	if d1 != d2 {
		t.Fatalf("soak not deterministic:\n  run1 %s\n  run2 %s", d1, d2)
	}
}
