package svc_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/lfs"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
	"repro/internal/svc"
)

// hasKind reports whether the trace recorded at least one stage of kind.
func hasKind(tr *reqtrace.Trace, kind reqtrace.Kind) bool {
	for _, s := range tr.Stages {
		if s.Kind == kind {
			return true
		}
	}
	return false
}

// checkSealed asserts the structural invariants every sealed trace must
// satisfy: marked done, every stage closed inside [submit, end], and the
// critical-path breakdown summing exactly to the end-to-end latency.
func checkSealed(t *testing.T, tr *reqtrace.Trace) {
	t.Helper()
	if tr == nil {
		t.Fatal("no trace retained")
	}
	if !tr.Done {
		t.Fatalf("request %d: trace not sealed", tr.ID)
	}
	for i, s := range tr.Stages {
		if s.End < s.Start {
			t.Fatalf("request %d stage %d (%s): open or inverted interval [%v, %v]",
				tr.ID, i, s.Kind, s.Start, s.End)
		}
		if s.End > tr.End {
			t.Fatalf("request %d stage %d (%s): ends at %v after the request at %v",
				tr.ID, i, s.Kind, s.End, tr.End)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("request %d: %v", tr.ID, err)
	}
	var sum sim.Time
	for _, d := range tr.Breakdown() {
		sum += d
	}
	if sum != tr.Latency() {
		t.Fatalf("request %d: breakdown sums to %v, latency %v", tr.ID, sum, tr.Latency())
	}
}

// TestTraceFetchAndCacheHitSumToLatency reads a migrated file cold (the
// full demand-fetch path) and then warm (segment-cache hit), and checks
// both retained traces: stage kinds matching the path taken, and the
// critical-path sum invariant.
func TestTraceFetchAndCacheHitSumToLatency(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{})
		migrateAndEject(t, p, hl, "/data", 120)

		deadline := p.Now() + sim.Time(60*time.Second)
		if err := readVia(p, fe, hl, "/data", 0, 1, deadline); err != nil {
			t.Fatalf("cold read: %v", err)
		}
		// Drop the buffer-cache copy so the warm read exercises the
		// segment-cache lookup instead of resolving in memory.
		f, err := hl.FS.Open(p, "/data")
		if err != nil {
			t.Fatal(err)
		}
		hl.FS.DropFileBuffers(p, f.Inum())
		if err := readVia(p, fe, hl, "/data", 0, 1, deadline); err != nil {
			t.Fatalf("warm read: %v", err)
		}

		cold, warm := fe.Tracer.Request(1), fe.Tracer.Request(2)
		checkSealed(t, cold)
		checkSealed(t, warm)
		for _, kind := range []reqtrace.Kind{
			reqtrace.KindAdmission, reqtrace.KindCacheLookup,
			reqtrace.KindFetchWait, reqtrace.KindMediaTransfer,
		} {
			if !hasKind(cold, kind) {
				t.Fatalf("cold read trace missing %s: %+v", kind, cold.Stages)
			}
		}
		if hasKind(warm, reqtrace.KindFetchWait) || hasKind(warm, reqtrace.KindMediaTransfer) {
			t.Fatalf("warm read went to tertiary: %+v", warm.Stages)
		}
		if !hasKind(warm, reqtrace.KindCacheLookup) {
			t.Fatalf("warm read trace missing the cache lookup: %+v", warm.Stages)
		}
		started, sealed, _ := fe.Tracer.Counts()
		if started != 2 || sealed != 2 {
			t.Fatalf("tracer counts: started %d, sealed %d", started, sealed)
		}
	})
	k.Stop()
}

// TestCanceledRequestTraceCloses cancels a demand fetch mid-flight and
// checks the trace still seals: the abandoned fetch-wait stage is
// closed, the error is recorded, and the sum invariant holds.
func TestCanceledRequestTraceCloses(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{})
		migrateAndEject(t, p, hl, "/data", 120)

		r, err := fe.SubmitAsync(p, svc.Interactive, 0, func(wp *sim.Proc) error {
			f, oerr := hl.FS.Open(wp, "/data")
			if oerr != nil {
				return oerr
			}
			buf := make([]byte, lfs.BlockSize)
			_, rerr := f.ReadAt(wp, buf, 0)
			return rerr
		})
		if err != nil {
			t.Fatal(err)
		}
		// Cancel once the fetch is in flight (the request has left the
		// queue but the cartridge load takes seconds).
		p.Sleep(200 * sim.Time(time.Millisecond))
		r.Cancel()
		if werr := r.Wait(p); !errors.Is(werr, sim.ErrCanceled) {
			t.Fatalf("canceled read returned %v, want ErrCanceled", werr)
		}

		tr := fe.Tracer.Request(r.ID)
		checkSealed(t, tr)
		if tr.Err == "" {
			t.Fatal("canceled trace recorded no error")
		}
	})
	k.Stop()
}

// TestDeadlineExpiredTraceCloses gives a fetch-bound read a deadline far
// shorter than a cartridge load, lets the context expire mid-fetch, and
// checks the sealed trace: deadline recorded, error recorded, all
// stages closed, sum invariant intact.
func TestDeadlineExpiredTraceCloses(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{})
		migrateAndEject(t, p, hl, "/data", 120)

		deadline := p.Now() + 100*sim.Time(time.Millisecond)
		err := readVia(p, fe, hl, "/data", 0, 1, deadline)
		if err == nil {
			t.Fatal("read beat a 100ms deadline through a cartridge load")
		}

		tr := fe.Tracer.Request(1)
		checkSealed(t, tr)
		if tr.Deadline != deadline {
			t.Fatalf("trace deadline %v, want %v", tr.Deadline, deadline)
		}
		if tr.Err == "" {
			t.Fatal("expired trace recorded no error")
		}
		if tr.End > deadline && tr.End-deadline > sim.Time(time.Second) {
			t.Fatalf("request ran %v past its deadline before unwinding", tr.End-deadline)
		}
	})
	k.Stop()
}

// TestTracingDisabledLeavesNoTracer pins the DisableTracing escape
// hatch: no tracer, and requests still complete.
func TestTracingDisabledLeavesNoTracer(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{DisableTracing: true})
		migrateAndEject(t, p, hl, "/data", 8)
		if fe.Tracer != nil {
			t.Fatal("DisableTracing left a tracer attached")
		}
		if err := readVia(p, fe, hl, "/data", 0, 1, 0); err != nil {
			t.Fatal(err)
		}
	})
	k.Stop()
}
