package svc_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fsck"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/telemetry"
)

// rig builds a two-library HighLight instance (replication factor 2) and
// returns the raw jukeboxes so tests can fail individual drives.
func rig(t *testing.T, p *sim.Proc, k *sim.Kernel) (*core.HighLight, *jukebox.Jukebox, *jukebox.Jukebox) {
	t.Helper()
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	jb0 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	jb1 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	hl, err := core.New(p, core.Config{
		SegBlocks:   64,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{jb0, jb1},
		CacheSegs:   24,
		MaxInodes:   256,
		Replicas:    2,
		BufferBytes: 64 * lfs.BlockSize,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return hl, jb0, jb1
}

// migrateAndEject creates path with nblocks deterministic blocks, migrates
// it to tertiary, and drops every cache line so reads must fetch.
func migrateAndEject(t *testing.T, p *sim.Proc, hl *core.HighLight, path string, nblocks int) []byte {
	t.Helper()
	f, err := hl.FS.Create(p, path)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, nblocks*lfs.BlockSize)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := hl.FS.Sync(p); err != nil {
		t.Fatal(err)
	}
	if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
		t.Fatal(err)
	}
	if err := hl.CompleteMigration(p); err != nil {
		t.Fatal(err)
	}
	ejectAll(t, hl)
	return data
}

func ejectAll(t *testing.T, hl *core.HighLight) {
	t.Helper()
	for _, l := range hl.Cache.Lines() {
		if !l.Staging && l.Pins == 0 {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func auditVerdicts(hl *core.HighLight) map[string]int {
	out := map[string]int{}
	for _, d := range hl.Audit.All() {
		out[d.Verdict]++
	}
	return out
}

// readVia issues one admission-controlled read of nblocks at off through
// the front end.
func readVia(p *sim.Proc, fe *svc.FrontEnd, hl *core.HighLight, path string, off int64, nblocks int, deadline sim.Time) error {
	return fe.Submit(p, svc.Interactive, deadline, func(wp *sim.Proc) error {
		f, err := hl.FS.Open(wp, path)
		if err != nil {
			return err
		}
		buf := make([]byte, nblocks*lfs.BlockSize)
		_, err = f.ReadAt(wp, buf, off)
		return err
	})
}

// TestAdmitExecuteComplete walks requests through the full lifecycle:
// admitted, queued, executed against the tertiary fetch path, completed,
// with latency histograms populated and the admissions audited.
func TestAdmitExecuteComplete(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{})
		migrateAndEject(t, p, hl, "/data", 120)

		deadline := p.Now() + sim.Time(60*time.Second)
		for i := 0; i < 3; i++ {
			if err := readVia(p, fe, hl, "/data", int64(i)*lfs.BlockSize, 1, deadline); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
		st := fe.Stats()
		if st.Admitted != 3 || st.Completed != 3 || st.Failed != 0 {
			t.Fatalf("stats: %+v", st)
		}
		if st.DeadlineMisses != 0 {
			t.Fatalf("deadline misses on a 60s budget: %+v", st)
		}
		if st.P50Interactive <= 0 || st.P99Interactive < st.P50Interactive {
			t.Fatalf("latency quantiles not populated: p50=%v p99=%v", st.P50Interactive, st.P99Interactive)
		}
		if hl.Svc.Stats().Fetches == 0 {
			t.Fatal("reads never reached the tertiary fetch path")
		}
		if v := auditVerdicts(hl); v[attr.VerdictAdmitted] < 3 {
			t.Fatalf("admissions not audited: %v", v)
		}
	})
	k.Stop()
}

// TestOverloadShedsExplicitly fills both class queues past capacity and
// checks every excess submission is refused immediately with ErrOverload —
// and that admitted requests still reach a terminal state (no silent
// stalls anywhere).
func TestOverloadShedsExplicitly(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{
			Workers: 2, InteractiveQueue: 2, BackgroundQueue: 1,
			RetryBudget: 2, RetryPerAdmits: 100,
		})

		var admitted []*svc.Request
		sheds := 0
		submit := func(class svc.Class, n int) {
			for i := 0; i < n; i++ {
				r, err := fe.SubmitAsync(p, class, 0, func(wp *sim.Proc) error {
					wp.Sleep(sim.Time(time.Millisecond))
					return nil
				})
				if err != nil {
					if !errors.Is(err, svc.ErrOverload) {
						t.Fatalf("shed with wrong error: %v", err)
					}
					if r != nil {
						t.Fatal("shed returned a live request")
					}
					sheds++
					continue
				}
				admitted = append(admitted, r)
			}
		}
		// Submissions are back-to-back in one proc, so no worker runs in
		// between: the queues genuinely fill.
		submit(svc.Interactive, 6)
		submit(svc.Background, 3)
		if sheds != 4+2 {
			t.Fatalf("expected 6 sheds (4 interactive, 2 background), got %d", sheds)
		}
		for _, r := range admitted {
			if err := r.Wait(p); err != nil {
				t.Fatalf("admitted request %d failed: %v", r.ID, err)
			}
			if !r.Finished() {
				t.Fatalf("request %d did not reach a terminal state", r.ID)
			}
		}
		st := fe.Stats()
		if st.Shed != 6 || st.Admitted != 3 || st.Completed != 3 {
			t.Fatalf("stats: %+v", st)
		}
		if v := auditVerdicts(hl); v[attr.VerdictShed] < 6 {
			t.Fatalf("sheds not audited: %v", v)
		}

		// The retry budget bounds resubmissions: 2 banked tokens, then
		// denial.
		if !fe.AllowRetry() || !fe.AllowRetry() {
			t.Fatal("banked retry tokens refused")
		}
		if fe.AllowRetry() {
			t.Fatal("retry budget not enforced")
		}
		if st := fe.Stats(); st.RetriesGranted != 2 || st.RetriesDenied != 1 {
			t.Fatalf("retry accounting: %+v", st)
		}
	})
	k.Stop()
}

// TestQueuedExpiryShedsWithoutSideEffects saturates the workers and lets a
// short-deadline request expire while still queued: it must fail with the
// deadline error before its body runs — no tertiary fetch queued, no cache
// line touched.
func TestQueuedExpiryShedsWithoutSideEffects(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{Workers: 2})
		migrateAndEject(t, p, hl, "/data", 120)

		fetches0 := hl.Svc.Stats().Fetches
		lines0 := len(hl.Cache.Lines())

		// Two blockers occupy both workers for 100 ms.
		var blockers []*svc.Request
		for i := 0; i < 2; i++ {
			r, err := fe.SubmitAsync(p, svc.Interactive, 0, func(wp *sim.Proc) error {
				wp.Sleep(sim.Time(100 * time.Millisecond))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			blockers = append(blockers, r)
		}
		ran := false
		r, err := fe.SubmitAsync(p, svc.Interactive, p.Now()+sim.Time(10*time.Millisecond), func(wp *sim.Proc) error {
			ran = true
			return readVia(wp, fe, hl, "/data", 0, 1, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		werr := r.Wait(p)
		if !errors.Is(werr, sim.ErrDeadlineExceeded) {
			t.Fatalf("queued expiry returned %v, want ErrDeadlineExceeded", werr)
		}
		if ran {
			t.Fatal("expired request body ran anyway")
		}
		for _, b := range blockers {
			if err := b.Wait(p); err != nil {
				t.Fatalf("blocker: %v", err)
			}
		}
		if got := hl.Svc.Stats().Fetches; got != fetches0 {
			t.Fatalf("expired request queued a tertiary fetch: %d -> %d", fetches0, got)
		}
		if got := len(hl.Cache.Lines()); got != lines0 {
			t.Fatalf("expired request touched the cache: %d -> %d lines", lines0, got)
		}
		st := fe.Stats()
		if st.ExpiredInQueue != 1 {
			t.Fatalf("stats: %+v", st)
		}
		found := false
		for _, d := range hl.Audit.All() {
			if d.Verdict == attr.VerdictShed && strings.Contains(d.Reason, "expired in queue") {
				found = true
			}
		}
		if !found {
			t.Fatal("queued expiry not audited")
		}
	})
	k.Stop()
}

// TestCancelMidCopyoutLeavesConsistentState cancels a background migration
// while its staging stream is live. The cancellation must land on a chunk
// boundary: the staging segment and scheduled copyouts finish normally,
// CompleteMigration closes cleanly, and the volume checker finds nothing
// wrong — with the file contents intact and full replication preserved.
func TestCancelMidCopyoutLeavesConsistentState(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{})

		f, err := hl.FS.Create(p, "/big")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 6*64*lfs.BlockSize) // six staging segments
		for i := range data {
			data[i] = byte(i*11 + 3)
		}
		if _, err := f.WriteAt(p, data, 0); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}

		r, err := fe.SubmitAsync(p, svc.Background, 0, func(wp *sim.Proc) error {
			_, merr := hl.MigrateFiles(wp, []uint32{f.Inum()}, false)
			return merr
		})
		if err != nil {
			t.Fatal(err)
		}
		// Cancel as soon as the staging stream opens — well before the six
		// segments are through.
		for !hl.StagingOpen() && !r.Finished() {
			p.Sleep(sim.Time(time.Millisecond))
		}
		r.Cancel()
		werr := r.Wait(p)
		if !errors.Is(werr, sim.ErrCanceled) {
			t.Fatalf("canceled migration returned %v, want ErrCanceled", werr)
		}

		if err := hl.CompleteMigration(p); err != nil {
			t.Fatalf("CompleteMigration after cancel: %v", err)
		}
		if hl.StagingOpen() {
			t.Fatal("staging still open after CompleteMigration")
		}
		rep, err := fsck.Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("fsck after mid-copyout cancel:\n%s", rep.Summary())
		}
		if defs := hl.ReplicationDeficits(); len(defs) != 0 {
			t.Fatalf("replica catalog inconsistent after cancel: %+v", defs)
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(p, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("file contents changed by canceled migration")
		}
	})
	k.Stop()
}

// TestCancelAfterCompleteIsIdempotent cancels a request that already
// finished — once and then again — and checks the recorded outcome and the
// front-end accounting are untouched: cancellation is a no-op after
// completion, not a retroactive failure.
func TestCancelAfterCompleteIsIdempotent(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{})
		migrateAndEject(t, p, hl, "/data", 8)

		r, err := fe.SubmitAsync(p, svc.Interactive, 0, func(wp *sim.Proc) error {
			f, oerr := hl.FS.Open(wp, "/data")
			if oerr != nil {
				return oerr
			}
			buf := make([]byte, lfs.BlockSize)
			_, rerr := f.ReadAt(wp, buf, 0)
			return rerr
		})
		if err != nil {
			t.Fatal(err)
		}
		if werr := r.Wait(p); werr != nil {
			t.Fatal(werr)
		}
		if !r.Finished() {
			t.Fatal("request not finished after Wait")
		}
		before := fe.Stats()
		r.Cancel()
		r.Cancel()
		if r.Err() != nil {
			t.Fatalf("cancel after completion rewrote the outcome: %v", r.Err())
		}
		if werr := r.Wait(p); werr != nil {
			t.Fatalf("Wait after late cancel: %v", werr)
		}
		after := fe.Stats()
		if after.Completed != before.Completed || after.Failed != before.Failed {
			t.Fatalf("late cancel disturbed accounting: before %+v, after %+v", before, after)
		}
	})
	k.Stop()
}

// TestBreakerTripRerouteRestore drives the per-library circuit breaker
// through its whole life from real I/O outcomes: consecutive infrastructure
// failures trip it, an open breaker is routed around so reads are served
// from the healthy replica library, and after the cooldown a half-open
// probe against the recovered library restores it.
func TestBreakerTripRerouteRestore(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, jb0, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{
			Breaker: svc.BreakerConfig{Threshold: 3, Cooldown: 30 * sim.Time(time.Second)},
		})
		migrateAndEject(t, p, hl, "/data", 120)
		lib1 := hl.Libraries()[1]

		// Library 0 loses both drives (infrastructure failure the library
		// cannot hide) while library 1 is administratively down, so every
		// fetch attempts lib0 first and fails with ErrDriveOffline.
		jb0.SetDriveOffline(0, true)
		jb0.SetDriveOffline(1, true)
		lib1.SetDown(true)
		for i := 0; i < 3; i++ {
			err := readVia(p, fe, hl, "/data", 0, 1, 0)
			if err == nil {
				t.Fatalf("read %d succeeded with no library serviceable", i)
			}
			if errors.Is(err, svc.ErrOverload) {
				t.Fatalf("infra failure misreported as overload: %v", err)
			}
		}
		if got := fe.Breakers.State(0); got != svc.BreakerOpen {
			t.Fatalf("breaker 0 state after 3 consecutive failures: %d, want open", got)
		}
		if v := auditVerdicts(hl); v[attr.VerdictTripped] == 0 {
			t.Fatalf("trip not audited: %v", v)
		}

		// Reroute: library 1 comes back while breaker 0 is still open. The
		// read must succeed from the healthy library, and the breaker must
		// stay open (no probe inside the cooldown).
		lib1.SetDown(false)
		if err := readVia(p, fe, hl, "/data", 0, 1, 0); err != nil {
			t.Fatalf("read with tripped lib 0 and healthy lib 1: %v", err)
		}
		if got := fe.Breakers.State(0); got != svc.BreakerOpen {
			t.Fatalf("breaker 0 closed without a successful probe: %d", got)
		}

		// Restore: lib 0's drives return, and lib 1 is held down so the
		// half-open probe is guaranteed to be attempted against lib 0.
		jb0.SetDriveOffline(0, false)
		jb0.SetDriveOffline(1, false)
		lib1.SetDown(true)
		p.Sleep(31 * sim.Time(time.Second)) // past the cooldown
		ejectAll(t, hl)
		// A block no earlier read touched and the file system's block
		// buffer evicted long ago: the read must demand-fetch, and the
		// fetch router must consult (and probe) breaker 0.
		if err := readVia(p, fe, hl, "/data", 40*lfs.BlockSize, 1, 0); err != nil {
			t.Fatalf("probe read after recovery: %v", err)
		}
		if got := fe.Breakers.State(0); got != svc.BreakerClosed {
			t.Fatalf("breaker 0 not restored after successful probe: %d", got)
		}
		v := auditVerdicts(hl)
		if v[attr.VerdictProbed] == 0 || v[attr.VerdictRestored] == 0 {
			t.Fatalf("probe/restore not audited: %v", v)
		}

		// Full service resumes: whole file readable, byte-exact.
		lib1.SetDown(false)
		ejectAll(t, hl)
		f, err := hl.FS.Open(p, "/data")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 120*lfs.BlockSize)
		if _, err := f.ReadAt(p, got, 0); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != byte(i*13+5) {
				t.Fatalf("byte %d corrupted after breaker exercise", i)
			}
		}
	})
	k.Stop()
}

// TestBreakerStateMachine unit-tests the breaker transitions against a
// synthetic outcome stream: media errors do not trip, consecutive infra
// failures do, failed probes double the cooldown, and a successful probe
// restores and resets it.
func TestBreakerStateMachine(t *testing.T) {
	k := sim.NewKernel()
	o := obs.New(k)
	audit := attr.NewAudit(0)
	cfg := svc.BreakerConfig{Threshold: 2, Cooldown: sim.Time(time.Second), MaxCooldown: 4 * sim.Time(time.Second)}
	b := svc.NewBreakerSet(k, 2, cfg, o, audit)
	infra := jukebox.ErrDriveOffline
	k.RunProc(func(p *sim.Proc) {
		if !b.Allow(0) || !b.Allow(1) {
			t.Fatal("fresh breakers refuse traffic")
		}
		// Media errors reset the consecutive count: infra, media, infra,
		// infra is what trips a Threshold-2 breaker.
		b.OnResult(0, infra)
		b.OnResult(0, dev.ErrPermanentMedia)
		b.OnResult(0, infra)
		if b.State(0) != svc.BreakerClosed {
			t.Fatal("tripped below threshold (media error did not reset)")
		}
		b.OnResult(0, infra)
		if b.State(0) != svc.BreakerOpen {
			t.Fatal("did not trip at threshold")
		}
		if b.Allow(0) {
			t.Fatal("open breaker allowed traffic inside cooldown")
		}
		if !b.Allow(1) {
			t.Fatal("library 1's breaker affected by library 0's trip")
		}

		// First probe window: Allow converts to a single half-open grant.
		p.Sleep(sim.Time(1100 * time.Millisecond))
		if !b.Allow(0) {
			t.Fatal("no probe granted after cooldown")
		}
		if b.State(0) != svc.BreakerHalfOpen {
			t.Fatal("probe grant did not half-open the breaker")
		}
		if b.Allow(0) {
			t.Fatal("second probe granted in the same window")
		}
		// Failed probe: back to open with a doubled cooldown.
		b.OnResult(0, infra)
		if b.State(0) != svc.BreakerOpen {
			t.Fatal("failed probe did not re-open")
		}
		p.Sleep(sim.Time(1100 * time.Millisecond))
		if b.Allow(0) {
			t.Fatal("re-opened breaker ignored its doubled cooldown")
		}
		p.Sleep(sim.Time(1100 * time.Millisecond))
		if !b.Allow(0) {
			t.Fatal("no probe after doubled cooldown")
		}
		// Successful probe restores and resets the cooldown.
		b.OnResult(0, nil)
		if b.State(0) != svc.BreakerClosed || !b.Allow(0) {
			t.Fatal("successful probe did not restore")
		}
	})
	k.Stop()

	// Out-of-range libraries and a nil set are safe no-ops.
	if b.State(-1) != svc.BreakerClosed || b.State(99) != svc.BreakerClosed {
		t.Fatal("out-of-range State not closed")
	}
	if !b.Allow(99) {
		t.Fatal("out-of-range Allow refused")
	}
	b.OnResult(99, infra)
	var nb *svc.BreakerSet
	if !nb.Allow(0) || nb.State(0) != svc.BreakerClosed || nb.Describe() != nil {
		t.Fatal("nil BreakerSet not a no-op")
	}
	nb.OnResult(0, infra)
}

// TestBrownoutHysteresis checks the graceful-degradation ordering: a deep
// interactive queue puts the front end in brownout (repair and migration
// throttles report true), and it exits only after the queue drains past the
// low watermark — both transitions audited.
func TestBrownoutHysteresis(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{
			Workers: 2, InteractiveQueue: 8, BrownoutHi: 3, BrownoutLo: 1,
		})
		m := &migrate.Migrator{}
		fe.AttachMigrator(m)
		if m.Throttle == nil {
			t.Fatal("AttachMigrator did not wire the throttle")
		}
		if fe.InBrownout() {
			t.Fatal("brownout at idle")
		}

		var reqs []*svc.Request
		for i := 0; i < 5; i++ {
			r, err := fe.SubmitAsync(p, svc.Interactive, 0, func(wp *sim.Proc) error {
				wp.Sleep(sim.Time(5 * time.Millisecond))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, r)
		}
		if !fe.InBrownout() {
			t.Fatal("queue depth over high watermark did not enter brownout")
		}
		// Both background throttles see the brownout.
		if hl.RepairThrottle == nil || !hl.RepairThrottle() || !m.Throttle() {
			t.Fatal("brownout not visible to repair/migration throttles")
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
		if fe.InBrownout() {
			t.Fatal("drained queue did not exit brownout")
		}
		enters, exits := 0, 0
		for _, d := range hl.Audit.All() {
			if d.Verdict != attr.VerdictBrownout {
				continue
			}
			if strings.HasPrefix(d.Reason, "enter") {
				enters++
			} else {
				exits++
			}
		}
		if enters != 1 || exits != 1 {
			t.Fatalf("brownout transitions audited %d/%d times, want 1/1", enters, exits)
		}
	})
	k.Stop()
}

// TestFrontEndMetricsExported pins that the front end's instruments flow
// through the generic telemetry renderer: a rig with a FrontEnd attached
// must surface admission counters, per-class queue gauges, the brownout
// gauge, and the interactive latency histogram at /metrics without any
// svc-specific code in the telemetry package.
func TestFrontEndMetricsExported(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		fe := svc.New(hl, svc.Config{})
		migrateAndEject(t, p, hl, "/data", 60)
		deadline := p.Now() + sim.Time(30*time.Second)
		for i := 0; i < 2; i++ {
			if err := readVia(p, fe, hl, "/data", int64(i)*lfs.BlockSize, 1, deadline); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
		sn := telemetry.Collect(hl.Obs, hl.Heat, hl.Audit, p.Now())
		m := string(sn.Metrics)
		for _, want := range []string{
			"# TYPE hl_svc_admitted_total counter",
			"hl_svc_admitted_total 2",
			"hl_svc_completed_total 2",
			"hl_svc_shed_total 0",
			"hl_svc_queue_interactive",
			"hl_svc_queue_background",
			"hl_svc_brownout 0",
			"# TYPE hl_svc_latency_interactive_seconds histogram",
			"hl_svc_latency_interactive_seconds_count 2",
			"hl_svc_latency_interactive_seconds_p99",
		} {
			if !strings.Contains(m, want) {
				t.Fatalf("front-end metric missing %q in /metrics render:\n%s", want, m)
			}
		}
	})
	k.Stop()
}
