package svc

import (
	"errors"
	"fmt"

	"repro/internal/jukebox"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
	"time"
)

// Per-library circuit breakers. Each tertiary library (failure domain) gets
// a three-state breaker:
//
//	closed    — traffic flows; consecutive infrastructure failures are
//	            counted, and at Threshold the breaker trips.
//	open      — the fetch router ranks the library's copies just above
//	            down libraries (routeTripped), so reads are served from
//	            replicas on healthy libraries instead; after the cooldown
//	            the first Allow converts to a half-open probe.
//	half-open — exactly one probe request is let through per probe window;
//	            its outcome closes the breaker (restore) or re-opens it
//	            with a doubled cooldown.
//
// Only infrastructure failures — a library out of service, no healthy
// drive — count toward tripping. Media-level errors (end-of-medium,
// write-once violations, dust) mean the changer answered, so they reset
// the consecutive-failure count like a success.

// BreakerConfig bounds the per-library circuit breakers.
type BreakerConfig struct {
	// Threshold is the consecutive infrastructure-failure count that
	// trips a closed breaker (default 3).
	Threshold int
	// Cooldown is how long a freshly tripped breaker stays open before
	// the first half-open probe (default 2 s of virtual time). Each
	// failed probe doubles it, up to MaxCooldown.
	Cooldown sim.Time
	// MaxCooldown caps the doubled cooldown (default 64 s).
	MaxCooldown sim.Time
}

func (c *BreakerConfig) fill() {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * sim.Time(time.Second)
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 64 * sim.Time(time.Second)
	}
}

// Breaker states, exported through the per-library gauges
// (svc.breaker.lib<N>) and State.
const (
	BreakerClosed   = 0
	BreakerOpen     = 1
	BreakerHalfOpen = 2
)

func breakerStateName(s int) string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

type libBreaker struct {
	state      int
	consec     int      // consecutive infra failures while closed
	openedAt   sim.Time // when the breaker last tripped
	cooldown   sim.Time // current open duration (doubles per failed probe)
	probing    bool     // a half-open probe is outstanding
	probeStart sim.Time // when the outstanding probe was granted
}

// BreakerSet implements tertiary.BreakerGate for every configured library.
// It is consulted by the fetch router (Allow) and fed per-library attempt
// outcomes by the I/O process (OnResult); every trip, probe, and restore
// is recorded in the decision audit so `hldump -why` can explain why a
// library stopped (and resumed) taking traffic.
type BreakerSet struct {
	k     *sim.Kernel
	cfg   BreakerConfig
	o     *obs.Obs
	audit *attr.Audit

	libs   []libBreaker
	gauges []*obs.Gauge

	trips    *obs.Counter
	probes   *obs.Counter
	restores *obs.Counter
}

// NewBreakerSet creates one breaker per library, all closed.
func NewBreakerSet(k *sim.Kernel, nlibs int, cfg BreakerConfig, o *obs.Obs, audit *attr.Audit) *BreakerSet {
	cfg.fill()
	b := &BreakerSet{
		k: k, cfg: cfg, o: o, audit: audit,
		libs:     make([]libBreaker, nlibs),
		gauges:   make([]*obs.Gauge, nlibs),
		trips:    o.Counter("svc.breaker.trips"),
		probes:   o.Counter("svc.breaker.probes"),
		restores: o.Counter("svc.breaker.restores"),
	}
	for i := range b.gauges {
		b.gauges[i] = o.Gauge(fmt.Sprintf("svc.breaker.lib%d", i))
	}
	return b
}

// State reports a library's breaker state (BreakerClosed for unknown
// libraries, so bare-device configurations need no special casing).
func (b *BreakerSet) State(lib int) int {
	if b == nil || lib < 0 || lib >= len(b.libs) {
		return BreakerClosed
	}
	return b.libs[lib].state
}

// Allow reports whether library lib should be offered traffic. A closed
// breaker always says yes; an open one says no until its cooldown elapses,
// at which point the call itself converts to a half-open probe grant. The
// probe grant is side-effectful by design: the router asking is the
// admission decision.
func (b *BreakerSet) Allow(lib int) bool {
	if b == nil || lib < 0 || lib >= len(b.libs) {
		return true
	}
	s := &b.libs[lib]
	now := b.k.Now()
	switch s.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now-s.openedAt < s.cooldown {
			return false
		}
		b.setState(lib, BreakerHalfOpen)
		return b.grantProbe(lib, now)
	default: // half-open
		if s.probing && now-s.probeStart < s.cooldown {
			return false // one probe per window
		}
		// Either no probe is outstanding, or the last granted probe was
		// never attempted (the router found a healthy copy first) and its
		// window lapsed: grant a fresh one so the breaker cannot wedge.
		return b.grantProbe(lib, now)
	}
}

func (b *BreakerSet) grantProbe(lib int, now sim.Time) bool {
	s := &b.libs[lib]
	s.probing = true
	s.probeStart = now
	b.probes.Add(1)
	b.audit.Record(attr.Decision{
		T: now, Actor: "svc.breaker", Subject: fmt.Sprintf("lib:%d", lib),
		Seg: -1, Verdict: attr.VerdictProbed, Reason: "half-open probe window",
		Inputs: []attr.Input{
			attr.In("lib", float64(lib)),
			attr.In("cooldown_ms", float64(s.cooldown.Milliseconds())),
		},
	})
	return true
}

// infraFailure classifies an attempt outcome: only failures of the library
// infrastructure itself (changer out of service, no healthy drive) count
// toward tripping. Media errors mean the library answered.
func infraFailure(err error) bool {
	return err != nil &&
		(errors.Is(err, jukebox.ErrLibraryOffline) || errors.Is(err, jukebox.ErrDriveOffline))
}

// OnResult feeds back the outcome of one attempt against library lib. The
// I/O process calls it after every per-library segment read or write.
func (b *BreakerSet) OnResult(lib int, err error) {
	if b == nil || lib < 0 || lib >= len(b.libs) {
		return
	}
	s := &b.libs[lib]
	fail := infraFailure(err)
	switch s.state {
	case BreakerClosed:
		if !fail {
			s.consec = 0
			return
		}
		s.consec++
		if s.consec >= b.cfg.Threshold {
			b.trip(lib, err, b.cfg.Cooldown)
		}
	case BreakerHalfOpen:
		if fail {
			// Failed probe: back to open with a doubled cooldown.
			next := s.cooldown * 2
			if next > b.cfg.MaxCooldown {
				next = b.cfg.MaxCooldown
			}
			b.trip(lib, err, next)
			return
		}
		b.restore(lib)
	case BreakerOpen:
		// A straggling attempt (granted before the trip) finished; its
		// outcome is stale, so it neither re-trips nor restores.
	}
}

func (b *BreakerSet) trip(lib int, cause error, cooldown sim.Time) {
	s := &b.libs[lib]
	s.cooldown = cooldown
	s.openedAt = b.k.Now()
	s.consec = 0
	s.probing = false
	b.setState(lib, BreakerOpen)
	b.trips.Add(1)
	reason := "consecutive infrastructure failures"
	if cause != nil {
		reason = cause.Error()
	}
	b.audit.Record(attr.Decision{
		T: b.k.Now(), Actor: "svc.breaker", Subject: fmt.Sprintf("lib:%d", lib),
		Seg: -1, Verdict: attr.VerdictTripped, Reason: reason,
		Inputs: []attr.Input{
			attr.In("lib", float64(lib)),
			attr.In("threshold", float64(b.cfg.Threshold)),
			attr.In("cooldown_ms", float64(cooldown.Milliseconds())),
		},
	})
}

func (b *BreakerSet) restore(lib int) {
	s := &b.libs[lib]
	s.consec = 0
	s.probing = false
	s.cooldown = b.cfg.Cooldown
	b.setState(lib, BreakerClosed)
	b.restores.Add(1)
	b.audit.Record(attr.Decision{
		T: b.k.Now(), Actor: "svc.breaker", Subject: fmt.Sprintf("lib:%d", lib),
		Seg: -1, Verdict: attr.VerdictRestored, Reason: "probe succeeded",
		Inputs: []attr.Input{attr.In("lib", float64(lib))},
	})
}

func (b *BreakerSet) setState(lib, state int) {
	b.libs[lib].state = state
	b.gauges[lib].Set(int64(state))
}

// Describe summarizes every breaker for status dumps.
func (b *BreakerSet) Describe() []string {
	if b == nil {
		return nil
	}
	out := make([]string, len(b.libs))
	for i := range b.libs {
		out[i] = fmt.Sprintf("lib%d: %s", i, breakerStateName(b.libs[i].state))
	}
	return out
}
