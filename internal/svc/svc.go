// Package svc is HighLight's overload-hardened request front end: the
// admission-control layer between clients (the workload generators, the
// CLIs) and the core file system.
//
// Requests move through a typed lifecycle — submit → admit → queue →
// execute → complete/fail — with per-request virtual-time deadlines and
// cancellation propagated down through the cache, staging, tertiary, and
// jukebox layers via sim.Ctx. Admission queues are bounded per class
// (interactive reads vs. background migration work); a full queue sheds
// the request immediately with ErrOverload rather than letting it stall
// silently. Per-library circuit breakers (breaker.go) trip on consecutive
// infrastructure failures and route fetches around the sick library via
// the rank-based router, then half-open probe it back into service.
//
// Graceful degradation is ordered: under interactive-queue pressure the
// front end enters "brownout", throttling background migration and
// replica repair first while interactive requests keep a reserved worker
// quota. Every admit, shed, trip, probe, restore, and brownout transition
// is recorded in the decision audit, and queue depths, shed rates,
// breaker states, and admission-to-completion latency histograms are
// exported through the shared observability domain (visible at the
// telemetry server's /metrics and /decisions endpoints).
package svc

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// ErrOverload marks a request shed at admission because its class queue
// was full. Clients match it with errors.Is and either retry (against the
// front end's retry budget) or report the shed upward — the one thing the
// front end guarantees is that overload is an explicit error, never a
// silent stall.
var ErrOverload = errors.New("svc: overloaded, request shed")

// Class partitions the admission queues.
type Class int

const (
	// Interactive is the latency-sensitive class: demand reads, user
	// requests. It has the larger queue and a reserved worker quota.
	Interactive Class = iota
	// Background is the throughput class: migration batches, repair-ish
	// bulk work. It sheds first and is throttled during brownout.
	Background

	// Staging is the HSM service class: explicit stage-in/stage-out and
	// pin requests from the internal/hsm request queue. It ranks between
	// the other two — a user asked for the data movement (unlike
	// background migration) but did not block on a demand read (unlike
	// interactive), so non-reserved workers serve it after interactive
	// and before background.
	Staging

	numClasses
)

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Background:
		return "background"
	case Staging:
		return "staging"
	}
	return "unknown"
}

// Config bounds the front end.
type Config struct {
	// Workers is the number of request-executing processes (default 4).
	Workers int
	// ReservedInteractive is how many workers serve only the interactive
	// queue — the quota that keeps interactive requests moving during
	// background floods (default 1, clamped below Workers).
	ReservedInteractive int
	// InteractiveQueue / BackgroundQueue / StagingQueue bound the
	// per-class admission queues (defaults 64 / 16 / 32). A submit
	// against a full queue is shed with ErrOverload.
	InteractiveQueue int
	BackgroundQueue  int
	StagingQueue     int
	// RetryBudget caps banked retry tokens; RetryPerAdmits is how many
	// admissions earn one token (defaults 8 and 10: at most ~10% of
	// admitted traffic can be retries, so retries cannot amplify an
	// overload into a collapse).
	RetryBudget    int
	RetryPerAdmits int
	// BrownoutHi / BrownoutLo are the interactive queue-depth watermarks
	// with hysteresis: at Hi the front end enters brownout (background
	// migration and replica repair stand down), at Lo it exits.
	// Defaults: half and an eighth of InteractiveQueue.
	BrownoutHi int
	BrownoutLo int
	// Breaker configures the per-library circuit breakers.
	Breaker BreakerConfig
	// DisableTracing turns off the per-request causal tracer. Tracing is
	// pure observation (no virtual time, no RNG) so the default is on;
	// the switch exists for the ablation_reqtrace bench row, which proves
	// a traced run's metrics are bit-identical to an untraced one.
	DisableTracing bool
	// SLOBudget is the tolerated bad-request fraction (deadline misses +
	// failures) for the burn-rate gauges: burn = observed bad fraction /
	// budget, so burn 1.0 means exactly spending the error budget.
	// Default 0.01. SLOWindow is the sliding window of completions the
	// fraction is computed over (default 64).
	SLOBudget float64
	SLOWindow int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.ReservedInteractive <= 0 {
		c.ReservedInteractive = 1
	}
	if c.ReservedInteractive >= c.Workers {
		c.ReservedInteractive = c.Workers - 1
	}
	if c.InteractiveQueue <= 0 {
		c.InteractiveQueue = 64
	}
	if c.BackgroundQueue <= 0 {
		c.BackgroundQueue = 16
	}
	if c.StagingQueue <= 0 {
		c.StagingQueue = 32
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 8
	}
	if c.RetryPerAdmits <= 0 {
		c.RetryPerAdmits = 10
	}
	if c.BrownoutHi <= 0 {
		c.BrownoutHi = c.InteractiveQueue / 2
	}
	if c.BrownoutLo <= 0 {
		c.BrownoutLo = c.InteractiveQueue / 8
	}
	if c.BrownoutLo >= c.BrownoutHi {
		c.BrownoutLo = c.BrownoutHi / 2
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.01
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 64
	}
}

// Request is one unit of admitted work moving through the lifecycle.
type Request struct {
	ID       int64
	Class    Class
	Deadline sim.Time // absolute virtual time; 0 = none

	fn  func(p *sim.Proc) error
	ctx *sim.Ctx

	trace  *reqtrace.Trace
	qstage int // queue-wait stage index in trace

	submitT  sim.Time
	startT   sim.Time // 0 until execution begins
	endT     sim.Time
	finished bool
	err      error
	done     *sim.Cond
}

// Cancel abandons the request: a queued request is shed when a worker
// reaches it, a running one is unwound at its next cancellation point
// (cache miss, fetch wait, staging chunk boundary, jukebox entry).
func (r *Request) Cancel() {
	if !r.finished {
		r.ctx.Cancel(nil)
	}
}

// Wait blocks until the request completes or is shed, returning its error.
func (r *Request) Wait(p *sim.Proc) error {
	for !r.finished {
		r.done.Wait(p)
	}
	return r.err
}

// Err returns the terminal error (nil while unfinished or on success).
func (r *Request) Err() error { return r.err }

// Finished reports whether the request reached a terminal state.
func (r *Request) Finished() bool { return r.finished }

// FrontEnd is the admission-controlled request front end over one
// HighLight instance. Create it with New; all methods must be called from
// procs of the instance's kernel.
type FrontEnd struct {
	HL       *core.HighLight
	Cfg      Config
	Breakers *BreakerSet
	// Tracer is the per-request causal tracer (nil when
	// Config.DisableTracing). Every admitted request gets a Trace riding
	// its sim.Ctx; the slowest exemplars per class and a recent ring are
	// retained for hldump -request/-slowest and the /requests endpoint.
	Tracer *reqtrace.Tracer

	k      *sim.Kernel
	queues [numClasses][]*Request
	work   *sim.Cond
	nextID int64

	brownout        bool
	retryTokens     int
	admitsSinceEarn int

	// Instruments (all exported via the shared obs domain).
	qGauge    [numClasses]*obs.Gauge
	latH      [numClasses]*obs.Histogram
	admitted  *obs.Counter
	shed      *obs.Counter
	expiredQ  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	misses    *obs.Counter
	retryOK   *obs.Counter
	retryNo   *obs.Counter
	brownG    *obs.Gauge

	// SLO burn rate, per class: a sliding window of recent completions
	// scoring deadline misses and failures against the error budget.
	// The gauge holds burn x1000 (obs gauges are integers): 1000 means
	// the window exactly spends the budget, above is burning hot.
	sloG    [numClasses]*obs.Gauge
	sloRing [numClasses][]bool // true = bad (missed deadline or failed)
	sloNext [numClasses]int
	sloSeen [numClasses]int
	sloBad  [numClasses]int
}

// New builds the front end over hl, wires the circuit breakers into the
// tertiary fetch router and the brownout signal into the repair daemon,
// and starts the worker processes. Attach the migrator's throttle with
// AttachMigrator.
func New(hl *core.HighLight, cfg Config) *FrontEnd {
	cfg.fill()
	fe := &FrontEnd{
		HL:          hl,
		Cfg:         cfg,
		k:           hl.K,
		work:        hl.K.NewCond("svc.work"),
		retryTokens: cfg.RetryBudget,
	}
	fe.Breakers = NewBreakerSet(hl.K, len(hl.Libraries()), cfg.Breaker, hl.Obs, hl.Audit)
	hl.Svc.Breaker = fe.Breakers
	hl.RepairThrottle = fe.InBrownout

	o := hl.Obs
	if !cfg.DisableTracing {
		fe.Tracer = reqtrace.New(0, 0)
		fe.Tracer.SetObs(o)
	}
	for c := Class(0); c < numClasses; c++ {
		fe.qGauge[c] = o.Gauge("svc.queue." + c.String())
		fe.latH[c] = o.Histogram("svc.latency."+c.String(), obs.LatencyBounds)
		fe.sloG[c] = o.Gauge("svc.slo_burn_milli." + c.String())
		fe.sloRing[c] = make([]bool, cfg.SLOWindow)
	}
	fe.admitted = o.Counter("svc.admitted")
	fe.shed = o.Counter("svc.shed")
	fe.expiredQ = o.Counter("svc.expired_in_queue")
	fe.completed = o.Counter("svc.completed")
	fe.failed = o.Counter("svc.failed")
	fe.misses = o.Counter("svc.deadline_misses")
	fe.retryOK = o.Counter("svc.retries_granted")
	fe.retryNo = o.Counter("svc.retries_denied")
	fe.brownG = o.Gauge("svc.brownout")

	for i := 0; i < cfg.Workers; i++ {
		reserved := i < cfg.ReservedInteractive
		fe.k.GoDaemon(fmt.Sprintf("svc-worker-%d", i), func(p *sim.Proc) {
			fe.worker(p, reserved)
		})
	}
	return fe
}

// AttachMigrator points the migrator's brownout throttle at the front
// end, so background migration stands down while interactive queues are
// deep.
func (fe *FrontEnd) AttachMigrator(m *migrate.Migrator) {
	m.Throttle = fe.InBrownout
}

// InBrownout reports whether the front end is currently shedding
// background work to protect interactive latency.
func (fe *FrontEnd) InBrownout() bool { return fe.brownout }

// QueueDepth reports the current admission-queue depth of one class.
func (fe *FrontEnd) QueueDepth(c Class) int { return len(fe.queues[c]) }

// Submit admits fn under class with an absolute virtual-time deadline
// (0 = none), waits for it to complete, and returns its error. A full
// queue returns ErrOverload immediately.
func (fe *FrontEnd) Submit(p *sim.Proc, class Class, deadline sim.Time, fn func(p *sim.Proc) error) error {
	r, err := fe.SubmitAsync(p, class, deadline, fn)
	if err != nil {
		return err
	}
	return r.Wait(p)
}

// SubmitAsync admits fn and returns without waiting; call Wait on the
// returned request. A full queue sheds with ErrOverload (nil request).
func (fe *FrontEnd) SubmitAsync(p *sim.Proc, class Class, deadline sim.Time, fn func(p *sim.Proc) error) (*Request, error) {
	capacity := fe.Cfg.InteractiveQueue
	switch class {
	case Background:
		capacity = fe.Cfg.BackgroundQueue
	case Staging:
		capacity = fe.Cfg.StagingQueue
	}
	fe.nextID++
	id := fe.nextID
	if len(fe.queues[class]) >= capacity {
		fe.shed.Add(1)
		fe.HL.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "svc", Subject: fmt.Sprintf("req:%d", id),
			Seg: -1, Verdict: attr.VerdictShed, Reason: class.String() + " queue full",
			Inputs: []attr.Input{
				attr.In("class", float64(class)),
				attr.In("depth", float64(len(fe.queues[class]))),
				attr.In("capacity", float64(capacity)),
			},
		})
		return nil, fmt.Errorf("%w: %s queue full (%d)", ErrOverload, class, capacity)
	}
	r := &Request{
		ID:       id,
		Class:    class,
		Deadline: deadline,
		fn:       fn,
		ctx:      fe.k.NewCtx(deadline),
		submitT:  p.Now(),
		done:     fe.k.NewCond(fmt.Sprintf("svc.req-%d", id)),
	}
	r.trace = fe.Tracer.Start(id, class.String(), p.Now(), deadline)
	reqtrace.Attach(r.ctx, r.trace)
	r.trace.Mark(reqtrace.KindAdmission, p.Now(), "admitted")
	r.qstage = r.trace.StageStart(reqtrace.KindQueueWait, p.Now(), "")
	fe.admitted.Add(1)
	fe.earnRetryToken()
	fe.HL.Audit.Record(attr.Decision{
		T: p.Now(), Actor: "svc", Subject: fmt.Sprintf("req:%d", id),
		Seg: -1, Verdict: attr.VerdictAdmitted, Reason: class.String(),
		Inputs: []attr.Input{
			attr.In("class", float64(class)),
			attr.In("depth", float64(len(fe.queues[class]))),
			attr.In("deadline_ms", float64(deadline.Milliseconds())),
		},
	})
	fe.queues[class] = append(fe.queues[class], r)
	fe.qGauge[class].Set(int64(len(fe.queues[class])))
	fe.updateBrownout(p.Now())
	if deadline > 0 {
		fe.startWatchdog(r)
	}
	fe.work.Broadcast()
	return r, nil
}

// startWatchdog spawns the per-request deadline process: it sleeps until
// the deadline and, if the request is still live, cancels its scope —
// waking any layer blocked on the request (fetch waits re-check their
// context and abandon).
func (fe *FrontEnd) startWatchdog(r *Request) {
	fe.k.GoDaemon(fmt.Sprintf("svc-deadline-%d", r.ID), func(p *sim.Proc) {
		if d := r.Deadline - p.Now(); d > 0 {
			p.Sleep(d)
		}
		if !r.finished {
			r.ctx.Cancel(sim.ErrDeadlineExceeded)
		}
	})
}

// AllowRetry spends one retry token if any are banked. Clients call it
// after an ErrOverload shed; a false return means the budget is exhausted
// and the client must surface the shed instead of retrying.
func (fe *FrontEnd) AllowRetry() bool {
	if fe.retryTokens > 0 {
		fe.retryTokens--
		fe.retryOK.Add(1)
		return true
	}
	fe.retryNo.Add(1)
	return false
}

// earnRetryToken banks one retry token per RetryPerAdmits admissions,
// up to RetryBudget.
func (fe *FrontEnd) earnRetryToken() {
	fe.admitsSinceEarn++
	if fe.admitsSinceEarn >= fe.Cfg.RetryPerAdmits {
		fe.admitsSinceEarn = 0
		if fe.retryTokens < fe.Cfg.RetryBudget {
			fe.retryTokens++
		}
	}
}

// updateBrownout applies the hysteresis watermarks to the interactive
// queue depth and records transitions in the audit.
func (fe *FrontEnd) updateBrownout(now sim.Time) {
	depth := len(fe.queues[Interactive])
	switch {
	case !fe.brownout && depth >= fe.Cfg.BrownoutHi:
		fe.brownout = true
		fe.brownG.Set(1)
		fe.HL.Audit.Record(attr.Decision{
			T: now, Actor: "svc", Subject: "brownout",
			Seg: -1, Verdict: attr.VerdictBrownout, Reason: "enter: interactive queue over high watermark",
			Inputs: []attr.Input{
				attr.In("depth", float64(depth)),
				attr.In("hi", float64(fe.Cfg.BrownoutHi)),
			},
		})
	case fe.brownout && depth <= fe.Cfg.BrownoutLo:
		fe.brownout = false
		fe.brownG.Set(0)
		fe.HL.Audit.Record(attr.Decision{
			T: now, Actor: "svc", Subject: "brownout",
			Seg: -1, Verdict: attr.VerdictBrownout, Reason: "exit: interactive queue under low watermark",
			Inputs: []attr.Input{
				attr.In("depth", float64(depth)),
				attr.In("lo", float64(fe.Cfg.BrownoutLo)),
			},
		})
	}
}

// worker is one request-executing process. Reserved workers serve only
// the interactive queue; the rest serve interactive first, then
// background — strict priority, which combined with the reserved quota is
// what keeps interactive latency bounded while background work floods.
func (fe *FrontEnd) worker(p *sim.Proc, reservedInteractive bool) {
	for {
		r := fe.dequeue(p, reservedInteractive)
		r.trace.StageEnd(r.qstage, p.Now())
		// Queued expiry: a request whose deadline passed (or that was
		// canceled) while waiting is shed here, before any layer below
		// sees it — no fetch is queued, no staging line touched.
		if err := r.ctx.Err(); err != nil {
			fe.expiredQ.Add(1)
			fe.HL.Audit.Record(attr.Decision{
				T: p.Now(), Actor: "svc", Subject: fmt.Sprintf("req:%d", r.ID),
				Seg: -1, Verdict: attr.VerdictShed, Reason: "expired in queue: " + err.Error(),
				Inputs: []attr.Input{
					attr.In("class", float64(r.Class)),
					attr.In("waited_ms", float64((p.Now() - r.submitT).Milliseconds())),
				},
			})
			fe.complete(r, fmt.Errorf("svc: request %d shed before execution: %w", r.ID, err))
			continue
		}
		r.startT = p.Now()
		if r.trace != nil {
			r.trace.Start = r.startT
		}
		restore := p.PushCtx(r.ctx)
		err := r.fn(p)
		restore()
		if r.Deadline > 0 && p.Now() > r.Deadline {
			fe.misses.Add(1)
		}
		fe.complete(r, err)
	}
}

// dequeue pops the next request this worker may run, blocking while its
// queues are empty.
func (fe *FrontEnd) dequeue(p *sim.Proc, reservedInteractive bool) *Request {
	for {
		if q := fe.queues[Interactive]; len(q) > 0 {
			r := q[0]
			fe.queues[Interactive] = q[1:]
			fe.qGauge[Interactive].Set(int64(len(fe.queues[Interactive])))
			fe.updateBrownout(p.Now())
			return r
		}
		if !reservedInteractive {
			for _, c := range [...]Class{Staging, Background} {
				if q := fe.queues[c]; len(q) > 0 {
					r := q[0]
					fe.queues[c] = q[1:]
					fe.qGauge[c].Set(int64(len(fe.queues[c])))
					return r
				}
			}
		}
		fe.work.Wait(p)
	}
}

// complete moves a request to its terminal state and wakes its waiters.
func (fe *FrontEnd) complete(r *Request, err error) {
	r.finished = true
	r.err = err
	r.endT = fe.k.Now()
	fe.latH[r.Class].Observe(r.endT - r.submitT)
	fe.Tracer.Seal(r.trace, r.endT, err)
	fe.observeSLO(r, err)
	if err == nil {
		fe.completed.Add(1)
	} else {
		fe.failed.Add(1)
	}
	r.done.Broadcast()
}

// observeSLO scores one completion against the class error budget and
// refreshes the burn-rate gauge. "Bad" means the request failed or
// overran its deadline; the burn rate is the bad fraction of the last
// SLOWindow completions divided by SLOBudget, published x1000.
func (fe *FrontEnd) observeSLO(r *Request, err error) {
	c := r.Class
	bad := err != nil || (r.Deadline > 0 && r.endT > r.Deadline)
	ring := fe.sloRing[c]
	if fe.sloSeen[c] >= len(ring) {
		if ring[fe.sloNext[c]] {
			fe.sloBad[c]--
		}
	} else {
		fe.sloSeen[c]++
	}
	ring[fe.sloNext[c]] = bad
	if bad {
		fe.sloBad[c]++
	}
	fe.sloNext[c] = (fe.sloNext[c] + 1) % len(ring)
	frac := float64(fe.sloBad[c]) / float64(fe.sloSeen[c])
	fe.sloG[c].Set(int64(frac/fe.Cfg.SLOBudget*1000 + 0.5))
}

// BurnRate reports the class's current SLO burn rate (bad fraction over
// the sliding window divided by the budget; 1.0 = exactly spending it).
func (fe *FrontEnd) BurnRate(c Class) float64 {
	if fe.sloSeen[c] == 0 {
		return 0
	}
	return float64(fe.sloBad[c]) / float64(fe.sloSeen[c]) / fe.Cfg.SLOBudget
}

// Stats is a front-end snapshot for reports and tests.
type Stats struct {
	Admitted, Shed, ExpiredInQueue int64
	Completed, Failed              int64
	DeadlineMisses                 int64
	RetriesGranted, RetriesDenied  int64
	QueueInteractive               int
	QueueBackground                int
	QueueStaging                   int
	Brownout                       bool
	P50Interactive, P99Interactive sim.Time
	P50Background, P99Background   sim.Time
	P50Staging, P99Staging         sim.Time
}

// Stats snapshots the counters and latency quantiles.
func (fe *FrontEnd) Stats() Stats {
	return Stats{
		Admitted:         fe.admitted.Value(),
		Shed:             fe.shed.Value(),
		ExpiredInQueue:   fe.expiredQ.Value(),
		Completed:        fe.completed.Value(),
		Failed:           fe.failed.Value(),
		DeadlineMisses:   fe.misses.Value(),
		RetriesGranted:   fe.retryOK.Value(),
		RetriesDenied:    fe.retryNo.Value(),
		QueueInteractive: len(fe.queues[Interactive]),
		QueueBackground:  len(fe.queues[Background]),
		QueueStaging:     len(fe.queues[Staging]),
		Brownout:         fe.brownout,
		P50Interactive:   fe.latH[Interactive].P50(),
		P99Interactive:   fe.latH[Interactive].P99(),
		P50Background:    fe.latH[Background].P50(),
		P99Background:    fe.latH[Background].P99(),
		P50Staging:       fe.latH[Staging].P50(),
		P99Staging:       fe.latH[Staging].P99(),
	}
}
