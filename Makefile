GO ?= go

.PHONY: all build test vet race verify bench crash

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Crash matrix: >= 40 deterministic power cuts across every pipeline
# phase (seed pinned in crash.DefaultConfig), each recovering with zero
# fsck problems and zero durability violations. -count=1 forces a fresh
# run even when the package test cache is warm.
crash:
	$(GO) test ./internal/crash/ -run TestCrashMatrix -count=1

# Tier-1 verification: everything CI runs, in order.
verify: build vet test race crash

bench:
	$(GO) test -bench . -benchtime 1x ./internal/bench/
