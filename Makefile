GO ?= go

.PHONY: all build test vet race verify bench

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: everything CI runs, in order.
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x ./internal/bench/
