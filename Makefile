GO ?= go

.PHONY: all build test vet race verify bench bench-json bench-check crash

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Crash matrix: >= 40 deterministic power cuts across every pipeline
# phase (seed pinned in crash.DefaultConfig), each recovering with zero
# fsck problems and zero durability violations. -count=1 forces a fresh
# run even when the package test cache is warm.
crash:
	$(GO) test ./internal/crash/ -run TestCrashMatrix -count=1

# Tier-1 verification: everything CI runs, in order.
verify: build vet test race crash

# Paper-scale table/figure benchmarks live in the root package (see
# bench_test.go); -benchtime 1x runs each experiment once, as documented
# there.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Machine-readable snapshot of every table's metrics + obs counters.
bench-json:
	$(GO) run ./cmd/hlbench -quick -json BENCH_0.json

# Diff a fresh quick-scale snapshot against the committed BENCH_*.json
# baseline within per-metric tolerances; fails on regression. After an
# intended performance change, regenerate the baseline with bench-json.
bench-check:
	$(GO) run ./cmd/benchcheck
