GO ?= go

.PHONY: all build test vet lint race verify bench bench-json bench-check crash soak profile

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis: staticcheck when available (CI installs it), otherwise
# fall back to go vet so the target works on a bare toolchain.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "lint: staticcheck not on PATH, falling back to go vet"; \
		$(GO) vet ./...; \
	fi

race:
	$(GO) test -race ./...

# Crash matrix: >= 40 deterministic power cuts across every pipeline
# phase (seed pinned in crash.DefaultConfig), each recovering with zero
# fsck problems and zero durability violations. -count=1 forces a fresh
# run even when the package test cache is warm.
crash:
	$(GO) test ./internal/crash/ -run TestCrashMatrix -count=1

# Chaos/overload soaks under the race detector: the combined overload +
# library-outage storm (double-run digest equality), the replication and
# repair soaks, the deadline/cancel suite, and the request-tracing
# determinism gate (tracing must not perturb the run, and the /requests
# document must be byte-identical across a double run). -count=1 forces
# fresh runs.
soak:
	$(GO) test -race -count=1 ./internal/svc/ -run 'TestOverloadLibraryOutageSoak|TestCancelMidCopyout|TestQueuedExpiry'
	$(GO) test -race -count=1 ./internal/core/ -run 'Soak|Repair'
	$(GO) test -race -count=1 ./internal/bench/ -run 'TestReqtraceAblationFree|TestRequestsJSONBitReproducible'

# Tier-1 verification: everything CI's verify job runs, in order.
verify: build vet lint test race crash

# Paper-scale table/figure benchmarks live in the root package (see
# bench_test.go); -benchtime 1x runs each experiment once, as documented
# there.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Machine-readable snapshot of every table's metrics + obs counters.
bench-json:
	$(GO) run ./cmd/hlbench -quick -json BENCH_0.json

# Diff a fresh quick-scale snapshot against the committed BENCH_*.json
# baseline within per-metric tolerances; fails on regression. After an
# intended performance change, regenerate the baseline with bench-json.
bench-check:
	$(GO) run ./cmd/benchcheck

# CPU profile of the multi-round migration + demand-fetch workload: run
# hlbench -serve (which exposes net/http/pprof) against the loopback,
# capture a profile into profiles/cpu.pprof, then shut the server down.
# Inspect with `go tool pprof profiles/cpu.pprof`.
PROFILE_ADDR ?= 127.0.0.1:18925
profile:
	mkdir -p profiles
	$(GO) build -o profiles/hlbench.bin ./cmd/hlbench
	profiles/hlbench.bin -quick -serve $(PROFILE_ADDR) -rounds 8 & pid=$$!; \
	sleep 2; \
	$(GO) tool pprof -seconds 15 -proto -output profiles/cpu.pprof http://$(PROFILE_ADDR)/debug/pprof/profile; \
	status=$$?; kill $$pid 2>/dev/null; exit $$status
