// Package repro's top-level benchmarks regenerate every table and figure
// of the HighLight paper's evaluation (§7) at the paper's scale. Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment once per iteration
// and reports the headline values via b.ReportMetric, so `go test -bench`
// output is a compact paper-vs-measured summary; cmd/hlbench prints the
// full tables.
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/dump"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// BenchmarkTable2_LargeObject regenerates Table 2: the Stonebraker/Olson
// large-object benchmark on FFS, base LFS, HighLight on-disk, and
// HighLight in-cache. Paper headline: HighLight within a few percent of
// base LFS when data are disk resident.
func BenchmarkTable2_LargeObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table2(bench.FullScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rep.Metrics
		b.ReportMetric(m["FFS/sequential read/KBs"], "ffs-seqrd-KB/s")
		b.ReportMetric(m["Base LFS/sequential write/KBs"], "lfs-seqwr-KB/s")
		b.ReportMetric(m["HighLight on-disk/sequential read/KBs"], "hl-seqrd-KB/s")
		b.ReportMetric(m["HighLight in-cache/random read/KBs"], "hl-cache-rndrd-KB/s")
		b.ReportMetric(m["Base LFS/random write/KBs"], "lfs-rndwr-KB/s")
	}
}

// BenchmarkTable3_AccessDelays regenerates Table 3: time-to-first-byte and
// total read time for disk-resident, cached, and uncached files. Paper
// headline: ~3.5 s first byte for uncached files, size-independent.
func BenchmarkTable3_AccessDelays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table3(bench.FullScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rep.Metrics
		b.ReportMetric(m["FFS/10KB/first"], "ffs-10KB-first-s")
		b.ReportMetric(m["HighLight in-cache/10KB/first"], "hl-cache-10KB-first-s")
		b.ReportMetric(m["HighLight uncached/10KB/first"], "hl-uncached-10KB-first-s")
		b.ReportMetric(m["HighLight uncached/10MB/total"], "hl-uncached-10MB-total-s")
	}
}

// BenchmarkTable4_MigrationBreakdown regenerates Table 4: the share of
// migration time in the Footprint library, the I/O server's disk reads,
// and queuing. Paper: 62% / 37% / 1%.
func BenchmarkTable4_MigrationBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table4(bench.FullScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Metrics["footprint%"], "footprint-%")
		b.ReportMetric(rep.Metrics["ioread%"], "ioread-%")
		b.ReportMetric(rep.Metrics["queue%"], "queue-%")
	}
}

// BenchmarkTable5_RawDevices regenerates Table 5: raw sequential transfer
// rates and the volume-change latency. Paper: MO 451/204 KB/s, RZ57
// 1417/993 KB/s, RZ58 1491/1261 KB/s, 13.5 s volume change.
func BenchmarkTable5_RawDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table5(bench.FullScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rep.Metrics
		b.ReportMetric(m["Raw MO read"], "mo-rd-KB/s")
		b.ReportMetric(m["Raw MO write"], "mo-wr-KB/s")
		b.ReportMetric(m["Raw RZ57 read"], "rz57-rd-KB/s")
		b.ReportMetric(m["Raw RZ57 write"], "rz57-wr-KB/s")
		b.ReportMetric(m["Volume change"], "volchange-s")
	}
}

// BenchmarkTable6_MigratorThroughput regenerates Table 6: migrator
// throughput with and without disk-arm contention for the three staging
// configurations. Paper headline: contention costs throughput; a second
// staging spindle recovers ~15%; a slow HP-IB disk degrades everything.
func BenchmarkTable6_MigratorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table6(bench.FullScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rep.Metrics
		b.ReportMetric(m["RZ57/contention"], "rz57-contention-KB/s")
		b.ReportMetric(m["RZ57/nocontention"], "rz57-clear-KB/s")
		b.ReportMetric(m["RZ57+RZ58/contention"], "rz58stage-contention-KB/s")
		b.ReportMetric(m["RZ57+HP7958A/overall"], "hpstage-overall-KB/s")
	}
}

// demoInstance builds the small HighLight instance the figure benchmarks
// drive.
func demoInstance(b *testing.B, k *sim.Kernel) *core.HighLight {
	disk := dev.NewDisk(k, dev.RZ57, 128*64, nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	var hl *core.HighLight
	k.RunProc(func(p *sim.Proc) {
		var err error
		hl, err = core.New(p, core.Config{
			SegBlocks: 64,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 24,
			MaxInodes: 256,
		}, true)
		if err != nil {
			b.Fatal(err)
		}
	})
	return hl
}

// BenchmarkFigure2_HierarchyFlow drives the Figure 2 data path — write to
// the disk farm, automatic migration, ejection, demand fetch — and reports
// the demand-fetch latency.
func BenchmarkFigure2_HierarchyFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		hl := demoInstance(b, k)
		var fetchSecs float64
		k.RunProc(func(p *sim.Proc) {
			if err := dump.Hierarchy(p, discard{}, hl); err != nil {
				b.Fatal(err)
			}
			fetchSecs = hl.Obs.CatTotal("fp.read").Seconds()
		})
		k.Stop()
		b.ReportMetric(fetchSecs, "footprint-read-s")
	}
}

// BenchmarkFigure5_DemandFetchPath walks one demand fetch through every
// layer of Figure 5 and reports the end-to-end request latency.
func BenchmarkFigure5_DemandFetchPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		hl := demoInstance(b, k)
		var total float64
		k.RunProc(func(p *sim.Proc) {
			t0 := p.Now()
			if err := dump.DataPath(p, discard{}, hl); err != nil {
				b.Fatal(err)
			}
			total = (p.Now() - t0).Seconds()
		})
		k.Stop()
		b.ReportMetric(total, "virtual-s")
	}
}

// BenchmarkFigure1and3_Layout parses and renders the on-media layout of a
// populated file system (Figures 1 and 3).
func BenchmarkFigure1and3_Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		hl := demoInstance(b, k)
		k.RunProc(func(p *sim.Proc) {
			f, err := hl.FS.Create(p, "/file")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, 1<<20), 0); err != nil {
				b.Fatal(err)
			}
			if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
				b.Fatal(err)
			}
			if err := hl.CompleteMigration(p); err != nil {
				b.Fatal(err)
			}
			if err := dump.Layout(p, discard{}, hl, 0); err != nil {
				b.Fatal(err)
			}
		})
		k.Stop()
	}
}

// BenchmarkFigure4_AddressMap exercises the block address space math of
// Figure 4 (segment/offset mapping and tertiary location resolution).
func BenchmarkFigure4_AddressMap(b *testing.B) {
	k := sim.NewKernel()
	hl := demoInstance(b, k)
	amap := hl.Amap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for idx := 0; idx < amap.TertSegs(); idx++ {
			seg := amap.SegForIndex(idx)
			if j, ok := amap.TertIndex(seg); !ok || j != idx {
				b.Fatal("address map round trip failed")
			}
		}
	}
	k.Stop()
}

// discard is an io.Writer that drops output (the figure benchmarks render
// into it).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkAblation_CacheEviction compares segment-cache eviction policies
// (LRU / FIFO / random / first-reference bypass) under reuse locality.
func BenchmarkAblation_CacheEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblationCachePolicy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Metrics["LRU/fetches"], "lru-fetches")
		b.ReportMetric(rep.Metrics["Random/fetches"], "random-fetches")
	}
}

// BenchmarkAblation_CopyoutScheduling compares immediate vs delayed
// copy-outs (§5.4).
func BenchmarkAblation_CopyoutScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblationCopyout()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Metrics["immediate/staging-s"], "immediate-staging-s")
		b.ReportMetric(rep.Metrics["delayed/staging-s"], "delayed-staging-s")
	}
}

// BenchmarkAblation_STPExponents compares space-time-product ranking
// exponents (§5.1) by future re-read cost.
func BenchmarkAblation_STPExponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblationSTP()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Metrics["STP (t^1 * s^1)/fetches"], "stp-fetches")
		b.ReportMetric(rep.Metrics["size only (s^1)/fetches"], "sizeonly-fetches")
	}
}

// BenchmarkAblation_MigrationGranularity compares whole-file vs block-range
// migration (§5.2) by post-migration hot-query latency.
func BenchmarkAblation_MigrationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblationBlockRange()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Metrics["whole-file/hotquery-ms"], "wholefile-hotquery-ms")
		b.ReportMetric(rep.Metrics["block-range/hotquery-ms"], "blockrange-hotquery-ms")
	}
}
