// Checkpoint: the scientific-computing workload of §5.2 — "scientific
// application checkpoints ... tend to be read completely and sequentially",
// which makes whole-file migration the right granularity. A simulation
// writes a checkpoint file every virtual hour; the cleaner and STP migrator
// daemons run continuously (the paper's always-on migrator, §8.2), keeping
// the small disk from filling while old checkpoints drain to tape-class
// storage. At the end, the run is "restarted" from an early checkpoint,
// demand-fetching it back.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
)

func main() {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	// A deliberately small disk (48 MB) against a large jukebox: the
	// simulation produces more checkpoint data than the disk can hold.
	disk := dev.NewDisk(k, dev.RZ57, 48*256, bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 8, 64, 256*lfs.BlockSize, bus)

	var hl *core.HighLight
	k.RunProc(func(p *sim.Proc) {
		var err error
		hl, err = core.New(p, core.Config{
			SegBlocks: 256,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 10,
			MaxInodes: 512,
		}, true)
		if err != nil {
			log.Fatal(err)
		}
		if err := hl.FS.Mkdir(p, "/ckpt"); err != nil {
			log.Fatal(err)
		}
	})

	// Background processes: the cleaner keeps clean segments available;
	// the migrator watches free space and ships dormant checkpoints out.
	cleaner := hl.FS.AttachCleaner(8, 12)
	k.GoDaemon("cleaner", cleaner)
	m := migrate.NewMigrator(hl)
	m.Policy = &migrate.STP{TimeExp: 1, SizeExp: 1, MinAge: 30 * time.Minute}
	m.LowWaterSegs = 20
	m.HighWaterSegs = 30
	m.Interval = 2 * time.Minute
	k.GoDaemon("migrator", m.Daemon)

	k.RunProc(func(p *sim.Proc) {
		const ckptMB = 4
		state := make([]byte, ckptMB<<20)
		for hour := 0; hour < 10; hour++ {
			// One hour of "computation".
			p.Sleep(time.Hour)
			for i := range state {
				state[i] = byte(i*7 + hour)
			}
			name := fmt.Sprintf("/ckpt/state-%03d", hour)
			f, err := hl.FS.Create(p, name)
			if err != nil {
				log.Fatalf("hour %d: %v", hour, err)
			}
			t0 := p.Now()
			if _, err := f.WriteAt(p, state, 0); err != nil {
				log.Fatalf("hour %d: %v", hour, err)
			}
			if err := hl.FS.Sync(p); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("hour %2d: wrote %d MB checkpoint in %5.2f virtual s  (clean segs: %2d, migrated so far: %2.0f MB)\n",
				hour, ckptMB, (p.Now() - t0).Seconds(), hl.FS.CleanSegs(), float64(m.BytesStaged)/(1<<20))
		}
		// Total written: 40 MB of checkpoints on a 48 MB disk that also
		// holds a 10 MB cache split — impossible without migration.

		// "The computation crashed": restart from checkpoint 2, long
		// since migrated. The read transparently demand-fetches.
		fmt.Println("\nrestarting from /ckpt/state-002 (archived)...")
		f, err := hl.FS.Open(p, "/ckpt/state-002")
		if err != nil {
			log.Fatal(err)
		}
		t0 := p.Now()
		got := make([]byte, ckptMB<<20)
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			log.Fatal(err)
		}
		for i := range got {
			if got[i] != byte(i*7+2) {
				log.Fatalf("checkpoint corrupted at byte %d", i)
			}
		}
		fetches := hl.Svc.Stats().Fetches
		fmt.Printf("restored %d MB in %.1f virtual s (%d segment fetches from the jukebox); state verified\n",
			ckptMB, (p.Now() - t0).Seconds(), fetches)
	})
	k.Stop()
}
