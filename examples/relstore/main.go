// Relstore: a miniature POSTGRES-style no-overwrite storage manager
// hosted on HighLight — the integration the paper anticipates in §2/§8.1
// ("perhaps Inversion and/or POSTGRES will be hosted on top of
// HighLight") and the workload §5.2 uses to motivate sub-file migration:
// "database files tend to be large, may be accessed randomly and
// incompletely, and in some systems are never overwritten."
//
// The store appends new tuple versions instead of updating in place
// (Stonebraker's no-overwrite storage manager), so a relation file grows
// a cold prefix of superseded versions and a hot tail of current ones —
// exactly the shape block-range migration exploits. Old versions remain
// addressable: "time travel" reads of a historical snapshot transparently
// demand-fetch the archived pages back from the jukebox.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
)

const (
	pageSize      = lfs.BlockSize
	tuplesPerPage = 64
	tupleSize     = pageSize / tuplesPerPage // 64 bytes
)

// relation is an append-only heap of tuple versions plus an in-memory
// primary index (key -> latest page/slot) and a version chain.
type relation struct {
	f     *lfs.File
	pages int
	// index[key] = list of (page, slot) versions, newest last.
	index map[uint32][]location
	buf   []byte
}

type location struct {
	page int
	slot int
}

func newRelation(p *sim.Proc, hl *core.HighLight, path string) (*relation, error) {
	f, err := hl.FS.Create(p, path)
	if err != nil {
		return nil, err
	}
	return &relation{f: f, index: make(map[uint32][]location), buf: make([]byte, pageSize)}, nil
}

// insert appends a new version of key with value; old versions are never
// touched (no-overwrite).
func (r *relation) insert(p *sim.Proc, key uint32, value uint64) error {
	slot := 0
	if r.pages > 0 {
		slot = len(r.index) % tuplesPerPage // naive fill heuristic
	}
	// Always append to the last page until full, then start a new one.
	page := r.pages - 1
	if page < 0 || r.slotsUsed(page) >= tuplesPerPage {
		page = r.pages
		r.pages++
		for i := range r.buf {
			r.buf[i] = 0
		}
	} else {
		if _, err := r.f.ReadAt(p, r.buf, int64(page)*pageSize); err != nil && err != io.EOF {
			return err
		}
	}
	slot = r.slotsUsed(page)
	off := slot * tupleSize
	binary.LittleEndian.PutUint32(r.buf[off:], key+1) // +1: 0 means empty
	binary.LittleEndian.PutUint64(r.buf[off+8:], value)
	if _, err := r.f.WriteAt(p, r.buf, int64(page)*pageSize); err != nil {
		return err
	}
	r.index[key] = append(r.index[key], location{page, slot})
	return nil
}

// slotsUsed counts occupied slots on a page via the index (cheap bookkeeping
// for the demo; a real heap keeps a page header).
func (r *relation) slotsUsed(page int) int {
	n := 0
	for _, chain := range r.index {
		for _, l := range chain {
			if l.page == page {
				n++
			}
		}
	}
	return n
}

// read returns the version of key at versionBack steps from the newest
// (0 = current, 1 = previous, ... — "time travel").
func (r *relation) read(p *sim.Proc, key uint32, versionBack int) (uint64, error) {
	chain := r.index[key]
	if len(chain) == 0 {
		return 0, fmt.Errorf("relstore: no such key %d", key)
	}
	i := len(chain) - 1 - versionBack
	if i < 0 {
		return 0, fmt.Errorf("relstore: key %d has only %d versions", key, len(chain))
	}
	loc := chain[i]
	if _, err := r.f.ReadAt(p, r.buf, int64(loc.page)*pageSize); err != nil && err != io.EOF {
		return 0, err
	}
	off := loc.slot * tupleSize
	if got := binary.LittleEndian.Uint32(r.buf[off:]); got != key+1 {
		return 0, fmt.Errorf("relstore: page %d slot %d holds key %d, want %d", loc.page, loc.slot, got-1, key)
	}
	return binary.LittleEndian.Uint64(r.buf[off+8:]), nil
}

func main() {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, 96*256, bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 64, 256*lfs.BlockSize, bus)

	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, core.Config{
			SegBlocks: 256,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 12,
			MaxInodes: 256,
		}, true)
		if err != nil {
			log.Fatal(err)
		}
		tracker := migrate.NewRangeTracker(k)
		hl.FS.OnAccess = tracker.Hook

		rel, err := newRelation(p, hl, "/pg/orders")
		if err != nil {
			if e := hl.FS.Mkdir(p, "/pg"); e != nil {
				log.Fatal(e)
			}
			if rel, err = newRelation(p, hl, "/pg/orders"); err != nil {
				log.Fatal(err)
			}
		}

		// Epoch 1: bulk load 3000 tuples, then update every key 3 times.
		// No-overwrite: every update appends a version.
		const keys = 3000
		for key := uint32(0); key < keys; key++ {
			if err := rel.insert(p, key, uint64(key)*10); err != nil {
				log.Fatal(err)
			}
		}
		for ver := 1; ver <= 3; ver++ {
			for key := uint32(0); key < keys; key += 3 {
				if err := rel.insert(p, key, uint64(key)*10+uint64(ver)); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := hl.FS.Sync(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("relation holds %d pages (%d KB); %d keys, up to 4 versions each\n",
			rel.pages, rel.pages*4, keys)

		// Time passes; current-version queries touch only the hot tail.
		p.Sleep(2 * time.Hour)
		rng := sim.NewRNG(41)
		for q := 0; q < 300; q++ {
			key := uint32(rng.Intn(keys/3)) * 3
			if _, err := rel.read(p, key, 0); err != nil {
				log.Fatal(err)
			}
		}

		// Dormant tuple versions migrate at block granularity (§5.2:
		// "dormant tuples in a relation should be eligible for migration
		// to tertiary storage; this requires a migration unit finer than
		// the file").
		br := &migrate.BlockRange{Tracker: tracker, MinAge: 30 * time.Minute}
		cold, err := br.ColdRefs(p, hl, rel.f.Inum())
		if err != nil {
			log.Fatal(err)
		}
		staged, err := hl.MigrateRefs(p, cold)
		if err != nil {
			log.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrated %.1f MB of dormant tuple versions to the jukebox\n", float64(staged)/(1<<20))

		// Cold-start the caches so the residency split is visible: drop
		// the buffer cache and eject every cached tertiary segment.
		if err := hl.FS.FlushCaches(p); err != nil {
			log.Fatal(err)
		}
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				log.Fatal(err)
			}
		}

		// Current-version queries still run at disk speed...
		t0 := p.Now()
		for q := 0; q < 100; q++ {
			key := uint32(rng.Intn(keys/3)) * 3
			v, err := rel.read(p, key, 0)
			if err != nil {
				log.Fatal(err)
			}
			if v != uint64(key)*10+3 {
				log.Fatalf("key %d current version = %d", key, v)
			}
		}
		fmt.Printf("100 current-version reads: %.2f virtual s (%d tertiary fetches)\n",
			(p.Now() - t0).Seconds(), hl.Svc.Stats().Fetches)

		// ...while a historical (time-travel) scan transparently pulls
		// the archived versions back.
		t0 = p.Now()
		verified := 0
		for key := uint32(0); key < keys; key += 97 {
			v, err := rel.read(p, key, len(rel.index[key])-1) // oldest version
			if err != nil {
				log.Fatal(err)
			}
			if v != uint64(key)*10 {
				log.Fatalf("key %d original version = %d, want %d", key, v, key*10)
			}
			verified++
		}
		fmt.Printf("time-travel scan verified %d original tuples in %.1f virtual s (%d tertiary fetches)\n",
			verified, (p.Now() - t0).Seconds(), hl.Svc.Stats().Fetches)
	})
	k.Stop()
}
