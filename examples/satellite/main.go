// Satellite: the Sequoia 2000 scenario that motivated HighLight (§2).
// Earth-science groups load independent satellite data sets; each set is a
// directory of image files. The namespace-locality policy (§5.3) migrates
// whole data sets as units, clustering related files in the same tertiary
// segments — so that when researchers later analyze a dormant set, a
// prefetch policy streams its segments back with one demand fetch per
// cluster instead of one per file.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
	"repro/internal/wl"
)

func main() {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, 256*256, bus) // 256 MB disk farm
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 8, 64, 256*lfs.BlockSize, bus)

	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, core.Config{
			SegBlocks: 256,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 48,
			MaxInodes: 2048,
		}, true)
		if err != nil {
			log.Fatal(err)
		}

		// Load three data sets, a week of virtual time apart: AVHRR
		// (oldest), Landsat, and a fresh GOES feed.
		if err := hl.FS.Mkdir(p, "/sat"); err != nil {
			log.Fatal(err)
		}
		for _, set := range []string{"avhrr", "landsat", "goes"} {
			dir := "/sat/" + set
			if err := hl.FS.Mkdir(p, dir); err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 12; i++ {
				f, err := hl.FS.Create(p, fmt.Sprintf("%s/scene-%02d.img", dir, i))
				if err != nil {
					log.Fatal(err)
				}
				img := make([]byte, 512*1024) // 512 KB per scene
				for j := range img {
					img[j] = byte(j ^ i)
				}
				if _, err := f.WriteAt(p, img, 0); err != nil {
					log.Fatal(err)
				}
			}
			if err := hl.FS.Sync(p); err != nil {
				log.Fatal(err)
			}
			p.Sleep(7 * 24 * time.Hour) // a week passes between loads
		}

		// Disk pressure: the migrator runs with the namespace policy and
		// a 10 MB target. The oldest unit (/sat/avhrr) migrates wholesale.
		m := migrate.NewMigrator(hl)
		m.Policy = migrate.NewNamespace()
		staged, err := m.RunOnce(p, 10<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("namespace migration staged %.1f MB\n", float64(staged)/(1<<20))
		for _, set := range []string{"avhrr", "landsat", "goes"} {
			fi, _ := hl.FS.Stat(p, "/sat/"+set+"/scene-00.img")
			refs, _ := hl.FS.FileBlockRefs(p, fi.Inum)
			where := "disk"
			for _, r := range refs {
				if hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr)) {
					where = "tertiary"
					break
				}
			}
			fmt.Printf("  /sat/%-8s -> %s\n", set, where)
		}

		// Months later: a researcher re-analyzes the archived AVHRR set.
		// Eject the cache first so every byte must come off the jukebox.
		if err := hl.FS.FlushCaches(p); err != nil {
			log.Fatal(err)
		}
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				log.Fatal(err)
			}
		}

		analyze := func(label string) sim.Time {
			start := p.Now()
			var total int64
			for i := 0; i < 12; i++ {
				f, err := hl.FS.Open(p, fmt.Sprintf("/sat/avhrr/scene-%02d.img", i))
				if err != nil {
					log.Fatal(err)
				}
				fi, _ := f.Stat(p)
				_, _, err = wl.SequentialScan(p, f, int64(fi.Size))
				if err != nil && err != io.EOF {
					log.Fatal(err)
				}
				total += int64(fi.Size)
			}
			elapsed := p.Now() - start
			fmt.Printf("%s: read %.1f MB in %.1f virtual s (%d jukebox fetches so far)\n",
				label, float64(total)/(1<<20), elapsed.Seconds(), hl.Svc.Stats().Fetches)
			return elapsed
		}

		// Pass 1: no prefetch — each cache miss stalls on the jukebox.
		cold := analyze("cold analysis, no prefetch      ")

		// Eject again and retry with a sequential prefetch policy: the
		// namespace clustering put the whole unit in consecutive
		// tertiary segments, so "load the missed segment and prefetch
		// remaining segments of the unit" (§5.3) works by construction.
		if err := hl.FS.FlushCaches(p); err != nil {
			log.Fatal(err)
		}
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				log.Fatal(err)
			}
		}
		hl.Svc.Prefetch = func(tag int) []int {
			var next []int
			for t := tag + 1; t <= tag+3 && t < hl.FS.TsegCount(); t++ {
				if hl.FS.TsegUsage(t).Flags&lfs.SegDirty != 0 {
					next = append(next, t)
				}
			}
			return next
		}
		warm := analyze("cold analysis, unit prefetch    ")

		fmt.Printf("prefetch driven by namespace clustering cut analysis latency by %.0f%%\n",
			100*(1-warm.Seconds()/cold.Seconds()))
	})
	k.Stop()
}
