// Dbworkload: the POSTGRES-style scenario of §5.2 and §8.1 — "database
// files tend to be large, may be accessed randomly and incompletely", so
// whole-file migration is wrong: dormant tuples should migrate while active
// pages of the same relation stay on disk. This example tracks access
// ranges with the in-kernel hook, migrates only the cold ranges of a large
// relation, and shows hot-page queries still running at disk speed while
// the cold region lives on the jukebox.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
)

const pageSize = lfs.BlockSize

func main() {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, 128*256, bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 64, 256*lfs.BlockSize, bus)

	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, core.Config{
			SegBlocks: 256,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 16,
			MaxInodes: 256,
		}, true)
		if err != nil {
			log.Fatal(err)
		}

		// Wire the sequential block-range recording into the kernel
		// (§5.2: "mechanism-supplied and updated records of file access
		// sequentiality").
		tracker := migrate.NewRangeTracker(k)
		hl.FS.OnAccess = tracker.Hook

		// A 16 MB relation: 4096 pages, loaded append-only.
		const pages = 4096
		rel, err := hl.FS.Create(p, "/pg/relation.d")
		if err != nil {
			if err2 := hl.FS.Mkdir(p, "/pg"); err2 != nil {
				log.Fatal(err2)
			}
			rel, err = hl.FS.Create(p, "/pg/relation.d")
			if err != nil {
				log.Fatal(err)
			}
		}
		page := make([]byte, pageSize)
		for i := 0; i < pages; i++ {
			for j := range page {
				page[j] = byte(i + j)
			}
			if _, err := rel.WriteAt(p, page, int64(i)*pageSize); err != nil {
				log.Fatal(err)
			}
		}
		if err := hl.FS.Sync(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d-page relation (%d MB)\n", pages, pages*pageSize>>20)

		// Query phase: the application's queries touch only the newest
		// 10%% of the relation (recent tuples), repeatedly, for an hour.
		p.Sleep(time.Hour)
		hot := pages * 9 / 10
		rng := sim.NewRNG(7)
		for q := 0; q < 400; q++ {
			pg := hot + rng.Intn(pages-hot)
			if _, err := rel.ReadAt(p, page, int64(pg)*pageSize); err != nil && err != io.EOF {
				log.Fatal(err)
			}
		}
		fmt.Printf("ran 400 queries against the newest %d pages\n", pages-hot)
		fmt.Printf("tracker holds %d access-range records for the relation\n", len(tracker.Ranges(rel.Inum())))

		// Block-based migration: only ranges idle for 30+ minutes leave
		// the disk. The hot tail stays.
		br := &migrate.BlockRange{Tracker: tracker, MinAge: 30 * time.Minute}
		cold, err := br.ColdRefs(p, hl, rel.Inum())
		if err != nil {
			log.Fatal(err)
		}
		staged, err := hl.MigrateRefs(p, cold)
		if err != nil {
			log.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			log.Fatal(err)
		}
		refs, _ := hl.FS.FileBlockRefs(p, rel.Inum())
		onDisk, onTape := 0, 0
		for _, r := range refs {
			if r.Lbn < 0 {
				continue
			}
			if hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr)) {
				onTape++
			} else {
				onDisk++
			}
		}
		fmt.Printf("migrated %.1f MB of dormant tuples; relation now %d pages on disk, %d on tertiary\n",
			float64(staged)/(1<<20), onDisk, onTape)

		// Hot queries still run at disk speed; a historical scan of the
		// cold region pays tertiary latency once per segment.
		if err := hl.FS.FlushCaches(p); err != nil {
			log.Fatal(err)
		}
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				log.Fatal(err)
			}
		}
		t0 := p.Now()
		for q := 0; q < 100; q++ {
			pg := hot + rng.Intn(pages-hot)
			if _, err := rel.ReadAt(p, page, int64(pg)*pageSize); err != nil && err != io.EOF {
				log.Fatal(err)
			}
		}
		hotTime := p.Now() - t0
		fmt.Printf("100 hot-page queries after migration: %.2f virtual s (%.1f ms/query, %d tertiary fetches)\n",
			hotTime.Seconds(), hotTime.Seconds()*10, hl.Svc.Stats().Fetches)

		t0 = p.Now()
		for q := 0; q < 100; q++ {
			pg := rng.Intn(hot)
			if _, err := rel.ReadAt(p, page, int64(pg)*pageSize); err != nil && err != io.EOF {
				log.Fatal(err)
			}
		}
		coldTime := p.Now() - t0
		fmt.Printf("100 historical queries (cold region): %.2f virtual s (%d tertiary fetches)\n",
			coldTime.Seconds(), hl.Svc.Stats().Fetches)
		fmt.Printf("block-range migration kept the hot working set %0.fx faster than whole-file migration would have\n",
			coldTime.Seconds()/hotTime.Seconds())
	})
	k.Stop()
}
