// Quickstart: build a HighLight file system on simulated hardware, write
// files, migrate them to the tape/MO jukebox, and read them back through
// the demand-fetch path — the whole storage hierarchy in ~100 lines.
package main

import (
	"fmt"
	"io"
	"log"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func main() {
	// Everything runs in a deterministic simulation kernel: devices
	// charge calibrated service times against a virtual clock.
	k := sim.NewKernel()

	// Hardware: one RZ57-class disk (64 MB here) and an HP 6300-class
	// magneto-optic jukebox (2 drives, 4 platters x 32 MB), sharing a
	// SCSI bus, as in the paper's testbed.
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, 64*256, bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 256*lfs.BlockSize, bus)

	k.RunProc(func(p *sim.Proc) {
		// Format a HighLight file system across both levels.
		hl, err := core.New(p, core.Config{
			SegBlocks: 256, // 1 MB segments
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 16, // 16 MB of disk may cache tertiary segments
			MaxInodes: 1024,
		}, true)
		if err != nil {
			log.Fatal(err)
		}

		// Applications just use normal file operations.
		if err := hl.FS.Mkdir(p, "/results"); err != nil {
			log.Fatal(err)
		}
		f, err := hl.FS.Create(p, "/results/run-0042.dat")
		if err != nil {
			log.Fatal(err)
		}
		data := make([]byte, 5<<20)
		for i := range data {
			data[i] = byte(i % 251)
		}
		t0 := p.Now()
		if _, err := f.WriteAt(p, data, 0); err != nil {
			log.Fatal(err)
		}
		if err := hl.FS.Sync(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote 5 MB to the disk farm in %.2f virtual s\n", (p.Now() - t0).Seconds())

		// Migrate the file to tertiary storage: blocks are gathered
		// into 1 MB staging segments and copied to the jukebox.
		t0 = p.Now()
		staged, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false)
		if err != nil {
			log.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrated %.1f MB to the MO jukebox in %.2f virtual s (%d segment copyouts)\n",
			float64(staged)/(1<<20), (p.Now() - t0).Seconds(), hl.Svc.Stats().Copyouts)

		// Reads still work while the segments are cached on disk...
		buf := make([]byte, 8192)
		t0 = p.Now()
		if _, err := f.ReadAt(p, buf, 0); err != nil && err != io.EOF {
			log.Fatal(err)
		}
		fmt.Printf("read from the segment cache in %.3f virtual s\n", (p.Now() - t0).Seconds())

		// ...and after ejecting the cache, the first read transparently
		// demand-fetches the containing segment from the jukebox.
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				log.Fatal(err)
			}
		}
		t0 = p.Now()
		if _, err := f.ReadAt(p, buf, 0); err != nil && err != io.EOF {
			log.Fatal(err)
		}
		fmt.Printf("demand fetch from tertiary storage took %.2f virtual s (first access)\n", (p.Now() - t0).Seconds())
		t0 = p.Now()
		if _, err := f.ReadAt(p, buf, int64(len(buf))); err != nil && err != io.EOF {
			log.Fatal(err)
		}
		fmt.Printf("the next read hits the refilled cache: %.3f virtual s\n", (p.Now() - t0).Seconds())

		// Verify end to end.
		got := make([]byte, len(data))
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			log.Fatal(err)
		}
		for i := range got {
			if got[i] != data[i] {
				log.Fatalf("byte %d corrupted", i)
			}
		}
		fmt.Println("verified 5 MB byte-for-byte across the hierarchy")
	})
	k.Stop()
}
